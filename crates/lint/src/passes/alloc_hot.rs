//! **ALLOC-HOT** — allocation discipline on the two proven-hot paths.
//!
//! Two regions of this workspace carry explicit no-allocation /
//! no-copy claims: the fixed-limb Montgomery kernels (`crypto::limbs`,
//! DESIGN §4.13 — zero heap traffic per modular multiply) and the
//! evidence hot loop (commit → sign → seal → verify plus the wire
//! codec, E4's copy-freedom exhibit). ci.sh used to approximate both
//! with line greps (`Vec::|vec!|to_vec` over limbs.rs, a JSONL counter
//! grep for deep copies); this pass subsumes them: walk the call graph
//! from both root sets and flag every allocation-vocabulary
//! construction (`Vec::…`, `vec!`, `Box::new`, `String::…`,
//! `format!`, `.to_vec()`, `.to_string()`, `.to_owned()`,
//! `Bytes::copy_from_slice`) in any reached function.
//!
//! Allocations that are *deliberate* (the BigUint interop boundary,
//! digest output buffers) get justification-mandatory allowlist
//! entries — the gate's job is to make every hot-path allocation a
//! declared decision, and to keep `crates/crypto/src/limbs.rs` itself
//! at zero entries.

use crate::callgraph::Reach;
use crate::lexer::Token;
use crate::passes::PassCtx;
use crate::Finding;

pub const ID: &str = "ALLOC-HOT";

/// Evidence hot-loop roots: (module, fn name). Owners are not matched
/// so trait-default methods (`Wire::to_wire_bytes`) and free fns both
/// qualify.
const HOT_ROOTS: &[(&str, &str)] = &[
    ("core::evidence", "sign_pair"),
    ("core::evidence", "seal_signatures"),
    ("core::evidence", "seal"),
    ("core::evidence", "seal_and_own"),
    ("core::evidence", "own_evidence"),
    ("core::evidence", "open_and_verify"),
    ("core::evidence", "verify_signatures"),
    ("core::evidence", "reverify_batch"),
    ("core::evidence", "reverify"),
    ("core::session", "commit"),
    ("core::session", "commit_cached"),
    ("net::codec", "to_wire_bytes"),
    ("net::codec", "from_wire_bytes"),
];

/// One allocation site.
pub(crate) struct AllocSite {
    pub line: u32,
    pub col: u32,
    pub what: String,
}

/// Scan a function body for allocation-vocabulary constructions.
pub(crate) fn alloc_sites(
    toks: &[Token],
    in_test: &[bool],
    body: (usize, usize),
) -> Vec<AllocSite> {
    let (start, end) = body;
    let mut out = Vec::new();
    let mut i = start;
    while i < end {
        if in_test.get(i).copied().unwrap_or(false) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if let Some(name) = t.ident() {
            // `Vec::new(…)` / `String::from(…)` / `Box::new(…)` /
            // `Bytes::copy_from_slice(…)`, with optional turbofish.
            if matches!(name, "Vec" | "String" | "Box" | "Bytes") {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_punct("::"))
                    && toks.get(j + 1).is_some_and(|t| t.is_punct("<"))
                {
                    // `Vec::<u8>::new` — skip the turbofish group.
                    let mut depth = 0isize;
                    j += 1;
                    while j < end {
                        if toks[j].is_punct("<") {
                            depth += 1;
                        } else if toks[j].is_punct(">") {
                            depth -= 1;
                            if depth == 0 {
                                j += 1;
                                break;
                            }
                        } else if toks[j].is_punct(">>") {
                            depth -= 2;
                            if depth <= 0 {
                                j += 1;
                                break;
                            }
                        }
                        j += 1;
                    }
                }
                if toks.get(j).is_some_and(|t| t.is_punct("::")) {
                    if let Some(assoc) = toks.get(j + 1).and_then(|t| t.ident()) {
                        let is_ctor = match name {
                            "Box" => assoc == "new",
                            "Bytes" => assoc == "copy_from_slice",
                            // Vec/String associated constructors.
                            _ => matches!(
                                assoc,
                                "new" | "with_capacity" | "from" | "from_utf8" | "from_utf8_lossy"
                            ),
                        };
                        if is_ctor && toks.get(j + 2).is_some_and(|t| t.is_punct("(")) {
                            out.push(AllocSite {
                                line: t.line,
                                col: t.col,
                                what: format!("{name}::{assoc}"),
                            });
                            i = j + 2;
                            continue;
                        }
                    }
                }
            }
            // `vec![…]` / `format!(…)`.
            if (name == "vec" || name == "format")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("!"))
            {
                out.push(AllocSite { line: t.line, col: t.col, what: format!("{name}!") });
                i += 2;
                continue;
            }
            // `.to_vec()` / `.to_string()` / `.to_owned()`.
            if matches!(name, "to_vec" | "to_string" | "to_owned")
                && i > start
                && toks[i - 1].is_punct(".")
                && toks.get(i + 1).is_some_and(|t| t.is_punct("("))
            {
                out.push(AllocSite { line: t.line, col: t.col, what: format!(".{name}()") });
                i += 2;
                continue;
            }
        }
        i += 1;
    }
    out
}

fn roots_matching(ctx: &PassCtx, pred: impl Fn(&crate::parser::FnItem) -> bool) -> Vec<usize> {
    (0..ctx.graph.fns.len())
        .filter(|&i| {
            let it = &ctx.graph.fns[i].item;
            !it.is_test && pred(it)
        })
        .collect()
}

fn report(ctx: &PassCtx, reach: &Reach, region: &str, out: &mut Vec<Finding>) {
    let g = ctx.graph;
    for i in 0..g.fns.len() {
        if !reach.reached[i] || g.fns[i].item.is_test {
            continue;
        }
        let meta = &g.fns[i];
        let file = &ctx.ws.files[meta.file];
        let root = reach.root[i].map(|r| g.fns[r].item.qname.clone()).unwrap_or_default();
        let chain = g.chain(reach, i);
        for site in alloc_sites(&file.tokens, &file.in_test, meta.item.body) {
            out.push(Finding {
                file: file.path.clone(),
                line: site.line,
                col: site.col,
                rule: ID,
                message: format!(
                    "heap allocation `{}` on the {region} (root `{root}`, {chain}); preallocate or justify in lint-allow.toml",
                    site.what
                ),
                allowed: false,
            });
        }
    }
}

pub fn run(ctx: &PassCtx, out: &mut Vec<Finding>) {
    // Region A: the fixed-limb kernels. Every non-test fn in
    // crypto::limbs is a root — the module's contract is zero heap
    // traffic, full stop.
    let kernel_roots = roots_matching(ctx, |it| it.module == "crypto::limbs");
    let kernel_reach = ctx.graph.reach_from(&kernel_roots);
    report(ctx, &kernel_reach, "fixed-limb kernel path", out);
    // Region B: the evidence hot loop (commit/sign/seal/verify + wire
    // codec). Sites already reported from region A are deduped by the
    // engine (same rule, same position).
    let hot_roots =
        roots_matching(ctx, |it| HOT_ROOTS.iter().any(|(m, n)| it.module == *m && it.name == *n));
    let hot_reach = ctx.graph.reach_from(&hot_roots);
    report(ctx, &hot_reach, "evidence hot loop", out);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::passes::run_pass;

    #[test]
    fn limbs_allocation_is_flagged_without_any_call_chain() {
        let hits = run_pass(
            run,
            &[(
                "crates/crypto/src/limbs.rs",
                "pub struct FixedUint;\nimpl FixedUint {\n\
                 pub fn mul(&self) { let scratch = Vec::with_capacity(8); } }",
            )],
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("Vec::with_capacity"));
        assert!(hits[0].message.contains("fixed-limb kernel path"));
    }

    #[test]
    fn hot_loop_reaches_allocation_across_crates() {
        let hits = run_pass(
            run,
            &[
                (
                    "crates/core/src/evidence.rs",
                    "use tpnr_crypto::hash;\npub fn seal() { hash::digest_into(); }",
                ),
                ("crates/crypto/src/hash.rs", "pub fn digest_into() { let buf = data.to_vec(); }"),
            ],
        );
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].file, "crates/crypto/src/hash.rs");
        assert!(hits[0].message.contains(".to_vec()"));
        assert!(hits[0].message.contains("evidence hot loop"));
        assert!(hits[0].message.contains("core::evidence::seal"));
    }

    #[test]
    fn unreached_allocation_is_fine() {
        let hits = run_pass(
            run,
            &[(
                "crates/core/src/obs.rs",
                "pub fn cold_path() { let v = vec![1, 2, 3]; let s = format!(\"x\"); }",
            )],
        );
        assert!(hits.is_empty());
    }

    #[test]
    fn deep_copy_ctor_is_flagged_on_the_wire_path() {
        let hits = run_pass(
            run,
            &[(
                "crates/net/src/codec.rs",
                "pub trait Wire {\n fn to_wire_bytes(&self) -> Bytes { frame_out() }\n}\n\
                 pub fn frame_out() -> Bytes { Bytes::copy_from_slice(buf) }",
            )],
        );
        assert_eq!(hits.len(), 1);
        assert!(hits[0].message.contains("Bytes::copy_from_slice"));
    }

    #[test]
    fn test_region_allocations_are_exempt() {
        let hits = run_pass(
            run,
            &[(
                "crates/crypto/src/limbs.rs",
                "pub fn mul_wide() {}\n#[cfg(test)]\nmod tests {\n\
                 #[test]\nfn t() { let v = vec![0u8; 64]; } }",
            )],
        );
        assert!(hits.is_empty());
    }
}
