//! The `lint-allow.toml` suppression list.
//!
//! Format: a sequence of `[[allow]]` tables, each with a `rule`, a
//! workspace-relative `path`, and a **mandatory, non-empty**
//! `justification`. A suppression without a written justification is a
//! parse error — the policy is that every exception to a protocol
//! invariant must say *why* it is safe, in the file, under review.
//!
//! The parser is a hand-rolled TOML subset (dependency-free, like the
//! rest of the crate): `[[allow]]` headers, `key = "quoted string"` pairs
//! with `\"` / `\\` escapes, `#` comments, blank lines. Anything else is
//! rejected loudly rather than silently ignored.

/// One suppression entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    pub rule: String,
    pub path: String,
    pub justification: String,
}

/// The parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// An empty allowlist (used when `lint-allow.toml` is absent).
    pub fn empty() -> Allowlist {
        Allowlist::default()
    }

    /// Parse the TOML-subset text; errors carry the offending line number.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        // Fields of the entry currently being built, if any.
        let mut cur: Option<(Option<String>, Option<String>, Option<String>)> = None;
        for (lineno, raw) in text.lines().enumerate() {
            let lineno = lineno + 1;
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                if let Some(c) = cur.take() {
                    entries.push(finish_entry(c, lineno)?);
                }
                cur = Some((None, None, None));
                continue;
            }
            let (key, value) = parse_kv(&line).ok_or_else(|| {
                format!("lint-allow.toml:{lineno}: expected `key = \"value\"`, got `{line}`")
            })?;
            let slot = cur.as_mut().ok_or_else(|| {
                format!("lint-allow.toml:{lineno}: `{key}` outside an [[allow]] table")
            })?;
            match key.as_str() {
                "rule" => slot.0 = Some(value),
                "path" => slot.1 = Some(value),
                "justification" => slot.2 = Some(value),
                other => {
                    return Err(format!("lint-allow.toml:{lineno}: unknown key `{other}`"));
                }
            }
        }
        if let Some(c) = cur.take() {
            entries.push(finish_entry(c, text.lines().count())?);
        }
        Ok(Allowlist { entries })
    }

    /// Does any entry suppress `rule` findings in `file`?
    pub fn permits(&self, file: &str, rule: &str) -> bool {
        self.entries.iter().any(|e| e.path == file && e.rule == rule)
    }

    /// Entries that never matched a finding — stale suppressions worth
    /// removing. Returned for the binary to warn about.
    pub fn unused<'a>(&'a self, findings: &[crate::Finding]) -> Vec<&'a AllowEntry> {
        self.entries
            .iter()
            .filter(|e| !findings.iter().any(|f| f.allowed && f.file == e.path && f.rule == e.rule))
            .collect()
    }
}

fn finish_entry(
    (rule, path, justification): (Option<String>, Option<String>, Option<String>),
    lineno: usize,
) -> Result<AllowEntry, String> {
    let rule =
        rule.ok_or_else(|| format!("lint-allow.toml:{lineno}: [[allow]] entry missing `rule`"))?;
    let path =
        path.ok_or_else(|| format!("lint-allow.toml:{lineno}: [[allow]] entry missing `path`"))?;
    let justification = justification.ok_or_else(|| {
        format!("lint-allow.toml:{lineno}: [[allow]] entry missing `justification`")
    })?;
    if justification.trim().is_empty() {
        return Err(format!(
            "lint-allow.toml:{lineno}: empty justification for {rule} @ {path}; \
             every suppression must say why it is safe"
        ));
    }
    Ok(AllowEntry { rule, path, justification })
}

/// Strip a `#` comment, but not inside a quoted string.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_str => escaped = true,
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Parse `key = "value"` with `\"` / `\\` escapes in the value.
fn parse_kv(line: &str) -> Option<(String, String)> {
    let eq = line.find('=')?;
    let key = line[..eq].trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let rest = line[eq + 1..].trim();
    let mut chars = rest.chars();
    if chars.next()? != '"' {
        return None;
    }
    let mut value = String::new();
    let mut escaped = false;
    for c in chars.by_ref() {
        if escaped {
            match c {
                'n' => value.push('\n'),
                't' => value.push('\t'),
                other => value.push(other),
            }
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            // Only trailing whitespace may follow the closing quote.
            return if chars.as_str().trim().is_empty() {
                Some((key.to_string(), value))
            } else {
                None
            };
        } else {
            value.push(c);
        }
    }
    None // unterminated string
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries() {
        let text =
            "# comment\n\n[[allow]]\nrule = \"NO-WALLCLOCK\"\npath = \"crates/x/src/lib.rs\"\n\
                    justification = \"host-facing bench harness\"\n\n[[allow]]\nrule = \"UNSAFE\"\n\
                    path = \"a.rs\"\njustification = \"b\"\n";
        let al = Allowlist::parse(text).unwrap();
        assert_eq!(al.entries.len(), 2);
        assert!(al.permits("crates/x/src/lib.rs", "NO-WALLCLOCK"));
        assert!(!al.permits("crates/x/src/lib.rs", "UNSAFE"));
    }

    #[test]
    fn missing_justification_is_an_error() {
        let text = "[[allow]]\nrule = \"UNSAFE\"\npath = \"a.rs\"\n";
        let err = Allowlist::parse(text).unwrap_err();
        assert!(err.contains("missing `justification`"), "{err}");
    }

    #[test]
    fn empty_justification_is_an_error() {
        let text = "[[allow]]\nrule = \"UNSAFE\"\npath = \"a.rs\"\njustification = \"  \"\n";
        let err = Allowlist::parse(text).unwrap_err();
        assert!(err.contains("empty justification"), "{err}");
    }

    #[test]
    fn unknown_key_is_an_error() {
        let text = "[[allow]]\nrule = \"UNSAFE\"\npath = \"a.rs\"\nreason = \"nope\"\n";
        assert!(Allowlist::parse(text).is_err());
    }

    #[test]
    fn comments_and_escapes() {
        let text = "[[allow]]  # trailing comment\nrule = \"CT-CMP\" # why not\n\
                    path = \"a.rs\"\njustification = \"says \\\"hi\\\" # not a comment\"\n";
        let al = Allowlist::parse(text).unwrap();
        assert_eq!(al.entries[0].justification, "says \"hi\" # not a comment");
    }

    #[test]
    fn unused_entries_detected() {
        let al = Allowlist::parse(
            "[[allow]]\nrule = \"UNSAFE\"\npath = \"a.rs\"\njustification = \"j\"\n",
        )
        .unwrap();
        let unused = al.unused(&[]);
        assert_eq!(unused.len(), 1);
    }
}
