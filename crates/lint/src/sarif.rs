//! `--sarif` output: SARIF 2.1.0, the interchange format code-scanning
//! UIs ingest. One run, one driver, one result per finding. Rendered
//! as a single line with fixed key order so the golden test can assert
//! byte-for-byte equality, mirroring the JSONL golden test.
//!
//! Allowlisted findings are emitted with `"level":"note"` and a
//! `suppressions` entry (kind `external`: the suppression lives in
//! `lint-allow.toml`, not in source); everything else is `"error"`.

use crate::jsonout::escape;
use crate::{passes, rules, Finding};

/// Stable tool metadata.
const TOOL_NAME: &str = "tpnr-lint";
const SARIF_VERSION: &str = "2.1.0";
const SCHEMA: &str = "https://json.schemastore.org/sarif-2.1.0.json";

/// Render every finding as one SARIF line.
pub fn render(findings: &[Finding]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{{\"$schema\":{},\"version\":{},\"runs\":[{{\"tool\":{{\"driver\":{{\"name\":{},\"rules\":[",
        escape(SCHEMA),
        escape(SARIF_VERSION),
        escape(TOOL_NAME)
    ));
    let mut first = true;
    for id in rule_ids() {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!("{{\"id\":{}}}", escape(id)));
    }
    out.push_str("]}},\"results\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let level = if f.allowed { "note" } else { "error" };
        out.push_str(&format!(
            "{{\"ruleId\":{},\"level\":{},\"message\":{{\"text\":{}}},\"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":{{\"uri\":{}}},\"region\":{{\"startLine\":{},\"startColumn\":{}}}}}}}]",
            escape(f.rule),
            escape(level),
            escape(&f.message),
            escape(&f.file),
            f.line,
            f.col
        ));
        if f.allowed {
            out.push_str(
                ",\"suppressions\":[{\"kind\":\"external\",\"justification\":\"lint-allow.toml\"}]",
            );
        }
        out.push('}');
    }
    out.push_str("]}]}\n");
    out
}

/// Every registered rule and pass id, in registry order.
fn rule_ids() -> Vec<&'static str> {
    rules::ALL.iter().map(|r| r.id).chain(passes::ALL.iter().map(|p| p.id)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(allowed: bool) -> Finding {
        Finding {
            file: "crates/core/src/client.rs".into(),
            line: 3,
            col: 7,
            rule: "PANIC-REACH",
            message: "`.unwrap()` can panic".into(),
            allowed,
        }
    }

    #[test]
    fn renders_minimal_sarif() {
        let got = render(&[finding(false)]);
        assert!(got.starts_with("{\"$schema\":"));
        assert!(got.contains("\"name\":\"tpnr-lint\""));
        assert!(got.contains("\"ruleId\":\"PANIC-REACH\""));
        assert!(got.contains("\"level\":\"error\""));
        assert!(got.contains("\"startLine\":3,\"startColumn\":7"));
        assert!(got.ends_with("]}]}\n"));
        assert!(!got.contains("suppressions"));
    }

    #[test]
    fn allowlisted_findings_are_notes_with_suppressions() {
        let got = render(&[finding(true)]);
        assert!(got.contains("\"level\":\"note\""));
        assert!(got.contains("\"suppressions\":[{\"kind\":\"external\""));
    }

    #[test]
    fn every_rule_and_pass_is_declared() {
        let got = render(&[]);
        for id in [
            "CT-CMP",
            "NO-WALLCLOCK",
            "DET-ORDER",
            "EVIDENCE-CTOR",
            "UNSAFE",
            "PANIC-REACH",
            "SECRET-FLOW",
            "ALLOC-HOT",
        ] {
            assert!(got.contains(&format!("{{\"id\":\"{id}\"}}")), "missing rule {id}");
        }
    }

    #[test]
    fn single_line_output() {
        let got = render(&[finding(false), finding(true)]);
        assert_eq!(got.matches('\n').count(), 1);
        assert!(got.ends_with('\n'));
    }
}
