//! Item-level parser: a brace-matched module / impl / fn tree with spans.
//!
//! The semantic passes (panic reachability, secret-flow taint, hot-path
//! allocation discipline) need to know *which function* a token belongs to
//! and *who calls whom* — neither of which the flat token stream gives
//! them. This parser recovers just enough structure from the [`crate::lexer`]
//! output, without building an AST:
//!
//! - `mod name { … }` nesting (appended to the file's module path);
//! - `impl Type { … }` / `impl Trait for Type { … }` / `trait T { … }`
//!   blocks (methods get an *owner* and, for trait impls, a trait name);
//! - `fn` items with name, visibility, parameter names, and the token
//!   range of their body (bodies are opaque: nested items inside a fn
//!   body are attributed to the enclosing function);
//! - `use` declarations flattened into an alias → path table (groups and
//!   `as` renames supported, globs ignored);
//! - `struct` items with field names and whether they `#[derive(Debug)]`
//!   (the secret-flow pass flags derived Debug on secret-bearing types).
//!
//! Item-level macro invocations (`thread_local! { … }` and friends) are
//! skipped wholesale: code inside them belongs to no function and is not
//! analyzed. This is a documented soundness limit of the call graph.

use crate::lexer::{TokKind, Token};

/// A parsed `fn` item.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name (`upload`, `decode`).
    pub name: String,
    /// Self type for inherent/trait-impl methods and trait default
    /// methods (`Client`), `None` for free functions.
    pub owner: Option<String>,
    /// Trait name for `impl Trait for Type` methods and trait decls.
    pub trait_name: Option<String>,
    /// Module path including nested `mod` blocks (`core::client::tests`).
    pub module: String,
    /// `module::[Owner::]name` — the display / lookup name.
    pub qname: String,
    pub is_pub: bool,
    /// Inside a `#[cfg(test)]` / `#[test]` region (or a test file).
    pub is_test: bool,
    /// Position of the function *name* token.
    pub line: u32,
    pub col: u32,
    /// Parameter names in declaration order, excluding any `self`.
    pub params: Vec<String>,
    pub has_self: bool,
    /// Half-open token range of the body including braces; empty when the
    /// item has no body (trait method declaration).
    pub body: (usize, usize),
}

/// One `use` alias: the name it introduces and the full path it means.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDecl {
    pub alias: String,
    pub path: Vec<String>,
}

/// A `struct` item (field names; derive(Debug) presence).
#[derive(Debug, Clone)]
pub struct StructItem {
    pub name: String,
    pub module: String,
    pub derives_debug: bool,
    pub fields: Vec<String>,
    pub line: u32,
    pub col: u32,
}

/// Everything the parser recovered from one file.
#[derive(Debug, Clone, Default)]
pub struct ParsedFile {
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseDecl>,
    pub structs: Vec<StructItem>,
}

/// Keywords that can appear as `ident (` without being calls.
pub const EXPR_KEYWORDS: &[&str] = &[
    "if", "else", "while", "for", "loop", "match", "return", "break", "continue", "in", "as",
    "let", "move", "ref", "mut", "box", "await", "async", "unsafe", "dyn", "impl", "fn", "pub",
    "use", "mod", "struct", "enum", "trait", "type", "where", "const", "static", "crate", "super",
    "true", "false", "yield",
];

/// Parse one lexed file. `module` is the file's base module path from
/// [`crate::module_of`]; `in_test` is the per-token test-region mask.
pub fn parse_file(
    module: &str,
    is_test_file: bool,
    tokens: &[Token],
    in_test: &[bool],
) -> ParsedFile {
    let mut p = Parser { toks: tokens, in_test, is_test_file, out: ParsedFile::default() };
    p.items(0, tokens.len(), module, None, None);
    p.out
}

struct Parser<'a> {
    toks: &'a [Token],
    in_test: &'a [bool],
    is_test_file: bool,
    out: ParsedFile,
}

impl Parser<'_> {
    /// Parse items in `[i, end)` under `module` / `owner`. Returns when
    /// the range is exhausted.
    fn items(
        &mut self,
        mut i: usize,
        end: usize,
        module: &str,
        owner: Option<&str>,
        trait_name: Option<&str>,
    ) {
        let mut is_pub = false;
        let mut derives_debug = false;
        while i < end {
            let t = &self.toks[i];
            // Attribute: scan it for `derive(… Debug …)`; everything else
            // about attributes is already handled by the test-region mask.
            if t.is_punct("#") && i + 1 < end && self.toks[i + 1].is_punct("[") {
                let attr_end = self.skip_group(i + 1, "[", "]", end);
                let body = &self.toks[i + 1..attr_end];
                if body.iter().any(|t| t.is_ident("derive"))
                    && body.iter().any(|t| t.is_ident("Debug"))
                {
                    derives_debug = true;
                }
                i = attr_end;
                continue;
            }
            let name = match t.ident() {
                Some(n) => n,
                None => {
                    // Stray group at item level (e.g. macro expansion
                    // remnants): skip it balanced so we can't desync.
                    i = match () {
                        _ if t.is_punct("{") => self.skip_group(i, "{", "}", end),
                        _ if t.is_punct("(") => self.skip_group(i, "(", ")", end),
                        _ if t.is_punct("[") => self.skip_group(i, "[", "]", end),
                        _ => i + 1,
                    };
                    continue;
                }
            };
            match name {
                "pub" => {
                    is_pub = true;
                    i += 1;
                    // `pub(crate)` / `pub(super)` / `pub(in path)`.
                    if i < end && self.toks[i].is_punct("(") {
                        i = self.skip_group(i, "(", ")", end);
                    }
                }
                "unsafe" | "async" | "extern" | "default" => {
                    i += 1;
                    // `extern "C"` — skip the ABI literal.
                    if i < end && self.toks[i].kind == TokKind::Lit {
                        i += 1;
                    }
                }
                "const" | "static" | "type" if !self.next_is(i + 1, "fn") => {
                    // `const X: T = …;` / `static` / `type` aliases. The
                    // initializer may contain `;` inside groups, so skip
                    // group-aware to the terminating semicolon.
                    i = self.skip_to_semi(i + 1, end);
                    is_pub = false;
                    derives_debug = false;
                }
                "const" => i += 1, // `const fn`: let the fn arm handle it
                "mod" => {
                    i = self.parse_mod(i, end, module, is_pub);
                    is_pub = false;
                    derives_debug = false;
                }
                "impl" => {
                    i = self.parse_impl(i, end, module);
                    is_pub = false;
                    derives_debug = false;
                }
                "trait" => {
                    i = self.parse_trait(i, end, module);
                    is_pub = false;
                    derives_debug = false;
                }
                "fn" => {
                    i = self.parse_fn(i, end, module, owner, trait_name, is_pub);
                    is_pub = false;
                    derives_debug = false;
                }
                "struct" => {
                    i = self.parse_struct(i, end, module, derives_debug);
                    is_pub = false;
                    derives_debug = false;
                }
                "enum" | "union" => {
                    // Skip name + generics, then the body braces (or `;`).
                    i += 1;
                    while i < end && !self.toks[i].is_punct("{") && !self.toks[i].is_punct(";") {
                        i += 1;
                    }
                    if i < end && self.toks[i].is_punct("{") {
                        i = self.skip_group(i, "{", "}", end);
                    } else {
                        i += 1;
                    }
                    is_pub = false;
                    derives_debug = false;
                }
                "use" => {
                    i = self.parse_use(i, end);
                    is_pub = false;
                    derives_debug = false;
                }
                "macro_rules" => {
                    // `macro_rules! name { … }` — opaque.
                    i += 1;
                    while i < end
                        && !self.toks[i].is_punct("{")
                        && !self.toks[i].is_punct("(")
                        && !self.toks[i].is_punct("[")
                    {
                        i += 1;
                    }
                    i = match () {
                        _ if i < end && self.toks[i].is_punct("{") => {
                            self.skip_group(i, "{", "}", end)
                        }
                        _ if i < end && self.toks[i].is_punct("(") => {
                            self.skip_group(i, "(", ")", end)
                        }
                        _ if i < end && self.toks[i].is_punct("[") => {
                            self.skip_group(i, "[", "]", end)
                        }
                        _ => i,
                    };
                    is_pub = false;
                    derives_debug = false;
                }
                _ => {
                    // Item-level macro invocation `name! { … }` /
                    // `name!(…);` — opaque (no functions inside are
                    // attributed; documented soundness limit).
                    if i + 1 < end && self.toks[i + 1].is_punct("!") {
                        let mut j = i + 2;
                        // Optional macro "name" ident (macro_rules-style).
                        if j < end && self.toks[j].ident().is_some() {
                            j += 1;
                        }
                        i = match () {
                            _ if j < end && self.toks[j].is_punct("{") => {
                                self.skip_group(j, "{", "}", end)
                            }
                            _ if j < end && self.toks[j].is_punct("(") => {
                                self.skip_group(j, "(", ")", end)
                            }
                            _ if j < end && self.toks[j].is_punct("[") => {
                                self.skip_group(j, "[", "]", end)
                            }
                            _ => j,
                        };
                    } else {
                        i += 1;
                    }
                    is_pub = false;
                    derives_debug = false;
                }
            }
        }
    }

    fn next_is(&self, i: usize, name: &str) -> bool {
        self.toks.get(i).is_some_and(|t| t.is_ident(name))
    }

    /// `mod name { … }` → recurse; `mod name;` → skip.
    fn parse_mod(&mut self, i: usize, end: usize, module: &str, _is_pub: bool) -> usize {
        let mut j = i + 1;
        let name = match self.toks.get(j).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return i + 1,
        };
        j += 1;
        if j < end && self.toks[j].is_punct("{") {
            let close = self.skip_group(j, "{", "}", end);
            let sub = if module.is_empty() { name } else { format!("{module}::{name}") };
            self.items(j + 1, close.saturating_sub(1), &sub, None, None);
            close
        } else {
            // `mod name;` — out-of-line, its file is parsed separately.
            j + 1
        }
    }

    /// `impl [<…>] [Trait for] Type [where …] { … }`.
    fn parse_impl(&mut self, i: usize, end: usize, module: &str) -> usize {
        let mut j = i + 1;
        if j < end && self.toks[j].is_punct("<") {
            j = self.skip_angles(j, end);
        }
        // Collect the head: last path-segment ident before `for` names the
        // trait; last one after names the type (or the type if no `for`).
        let mut before_for: Option<String> = None;
        let mut current: Option<String> = None;
        let mut saw_for = false;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct("{") {
                break;
            }
            if t.is_ident("where") {
                while j < end && !self.toks[j].is_punct("{") {
                    j += 1;
                }
                break;
            }
            if t.is_ident("for") {
                before_for = current.take();
                saw_for = true;
                j += 1;
                continue;
            }
            if t.is_punct("<") {
                j = self.skip_angles(j, end);
                continue;
            }
            if let Some(name) = t.ident() {
                if name != "dyn" && name != "mut" && name != "const" {
                    current = Some(name.to_string());
                }
            }
            j += 1;
        }
        if j >= end || !self.toks[j].is_punct("{") {
            return j;
        }
        let owner = current.unwrap_or_default();
        let trait_name = if saw_for { before_for } else { None };
        let close = self.skip_group(j, "{", "}", end);
        self.items(j + 1, close.saturating_sub(1), module, Some(&owner), trait_name.as_deref());
        close
    }

    /// `trait Name [: bounds] [where …] { … }` — default methods get the
    /// trait as their owner.
    fn parse_trait(&mut self, i: usize, end: usize, module: &str) -> usize {
        let mut j = i + 1;
        let name = match self.toks.get(j).and_then(|t| t.ident()) {
            Some(n) => n.to_string(),
            None => return i + 1,
        };
        j += 1;
        while j < end && !self.toks[j].is_punct("{") && !self.toks[j].is_punct(";") {
            if self.toks[j].is_punct("<") {
                j = self.skip_angles(j, end);
            } else {
                j += 1;
            }
        }
        if j >= end || !self.toks[j].is_punct("{") {
            return j + 1;
        }
        let close = self.skip_group(j, "{", "}", end);
        self.items(j + 1, close.saturating_sub(1), module, Some(&name), Some(&name));
        close
    }

    /// `fn name[<…>](params) [-> …] [where …] ({ … } | ;)`.
    fn parse_fn(
        &mut self,
        i: usize,
        end: usize,
        module: &str,
        owner: Option<&str>,
        trait_name: Option<&str>,
        is_pub: bool,
    ) -> usize {
        let mut j = i + 1;
        let (name, line, col) = match self.toks.get(j) {
            Some(t) => match t.ident() {
                Some(n) => (n.to_string(), t.line, t.col),
                None => return i + 1,
            },
            None => return i + 1,
        };
        j += 1;
        if j < end && self.toks[j].is_punct("<") {
            j = self.skip_angles(j, end);
        }
        if j >= end || !self.toks[j].is_punct("(") {
            return j;
        }
        let params_close = self.skip_group(j, "(", ")", end);
        let (params, has_self) = self.parse_params(j + 1, params_close.saturating_sub(1));
        // Scan to the body `{` or terminating `;`, skipping groups so a
        // `;` inside `[u8; 32]` or a return-type group can't fool us.
        let mut k = params_close;
        let mut body = (k, k);
        while k < end {
            let t = &self.toks[k];
            if t.is_punct("{") {
                let close = self.skip_group(k, "{", "}", end);
                body = (k, close);
                k = close;
                break;
            }
            if t.is_punct(";") {
                k += 1;
                break;
            }
            if t.is_punct("(") {
                k = self.skip_group(k, "(", ")", end);
            } else if t.is_punct("[") {
                k = self.skip_group(k, "[", "]", end);
            } else {
                k += 1;
            }
        }
        let is_test = self.is_test_file || self.in_test.get(i).copied().unwrap_or(false);
        let qname = match owner {
            Some(o) if !o.is_empty() => format!("{module}::{o}::{name}"),
            _ => format!("{module}::{name}"),
        };
        self.out.fns.push(FnItem {
            name,
            owner: owner.filter(|o| !o.is_empty()).map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            module: module.to_string(),
            qname,
            is_pub,
            is_test,
            line,
            col,
            params,
            has_self,
            body,
        });
        k
    }

    /// Parameter names from the token range inside the parens. Patterns
    /// keep their last identifier (`mut x: T` → `x`); `self` in any form
    /// sets `has_self` and is excluded from the list.
    fn parse_params(&self, start: usize, end: usize) -> (Vec<String>, bool) {
        let mut params = Vec::new();
        let mut has_self = false;
        let mut j = start;
        let mut pat_last: Option<String> = None;
        let mut pat_is_self = false;
        let mut in_type = false; // after the `:` of the current param
        while j < end {
            let t = &self.toks[j];
            if t.is_punct("(") {
                j = self.skip_group(j, "(", ")", end);
                continue;
            }
            if t.is_punct("[") {
                j = self.skip_group(j, "[", "]", end);
                continue;
            }
            if t.is_punct("<") {
                j = self.skip_angles(j, end);
                continue;
            }
            if t.is_punct(",") {
                if pat_is_self {
                    has_self = true;
                } else if let Some(p) = pat_last.take() {
                    params.push(p);
                }
                pat_last = None;
                pat_is_self = false;
                in_type = false;
                j += 1;
                continue;
            }
            if t.is_punct(":") && !self.toks.get(j + 1).is_some_and(|t| t.is_punct(":")) {
                in_type = true;
                j += 1;
                continue;
            }
            if !in_type {
                if t.is_ident("self") {
                    pat_is_self = true;
                } else if let Some(n) = t.ident() {
                    if n != "mut" && n != "ref" && n != "_" {
                        pat_last = Some(n.to_string());
                    }
                }
            }
            j += 1;
        }
        if pat_is_self {
            has_self = true;
        } else if let Some(p) = pat_last {
            params.push(p);
        }
        (params, has_self)
    }

    /// `struct Name [<…>] ({…} | (…); | ;)`.
    fn parse_struct(&mut self, i: usize, end: usize, module: &str, derives_debug: bool) -> usize {
        let mut j = i + 1;
        let (name, line, col) = match self.toks.get(j) {
            Some(t) => match t.ident() {
                Some(n) => (n.to_string(), t.line, t.col),
                None => return i + 1,
            },
            None => return i + 1,
        };
        j += 1;
        if j < end && self.toks[j].is_punct("<") {
            j = self.skip_angles(j, end);
        }
        // Skip a `where` clause if present.
        while j < end
            && !self.toks[j].is_punct("{")
            && !self.toks[j].is_punct("(")
            && !self.toks[j].is_punct(";")
        {
            j += 1;
        }
        let mut fields = Vec::new();
        let ret;
        if j < end && self.toks[j].is_punct("{") {
            let close = self.skip_group(j, "{", "}", end);
            // Field names: identifiers directly followed by `:` at depth 1.
            let mut depth = 0usize;
            let mut k = j;
            while k < close {
                let t = &self.toks[k];
                if t.is_punct("{") || t.is_punct("(") || t.is_punct("[") || t.is_punct("<") {
                    depth += 1;
                } else if t.is_punct("}") || t.is_punct(")") || t.is_punct("]") || t.is_punct(">") {
                    depth = depth.saturating_sub(1);
                } else if depth == 1 {
                    if let Some(n) = t.ident() {
                        if self.toks.get(k + 1).is_some_and(|t| t.is_punct(":"))
                            && !self.toks.get(k + 2).is_some_and(|t| t.is_punct(":"))
                            && n != "pub"
                        {
                            fields.push(n.to_string());
                        }
                    }
                }
                k += 1;
            }
            ret = close;
        } else if j < end && self.toks[j].is_punct("(") {
            let close = self.skip_group(j, "(", ")", end);
            ret = if close < end && self.toks[close].is_punct(";") { close + 1 } else { close };
        } else {
            ret = j + 1; // unit struct `;`
        }
        self.out.structs.push(StructItem {
            name,
            module: module.to_string(),
            derives_debug,
            fields,
            line,
            col,
        });
        ret
    }

    /// `use path::to::{a, b as c};` → alias table entries.
    fn parse_use(&mut self, i: usize, end: usize) -> usize {
        let semi = self.skip_to_semi(i + 1, end);
        let toks = &self.toks[i + 1..semi.saturating_sub(1).max(i + 1)];
        let mut decls = Vec::new();
        parse_use_tree(toks, &mut Vec::new(), &mut decls);
        self.out.uses.extend(decls);
        semi
    }

    /// Skip a balanced group from its opening token; returns the index
    /// one past the matching close (or `end`).
    fn skip_group(&self, open_idx: usize, open: &str, close: &str, end: usize) -> usize {
        let mut depth = 0usize;
        let mut j = open_idx;
        while j < end {
            if self.toks[j].is_punct(open) {
                depth += 1;
            } else if self.toks[j].is_punct(close) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        end
    }

    /// Skip a balanced `<…>` generic group (handles `<<` / `>>` shifts as
    /// two angles — good enough for declaration positions).
    fn skip_angles(&self, open_idx: usize, end: usize) -> usize {
        let mut depth = 0isize;
        let mut j = open_idx;
        while j < end {
            match &self.toks[j].kind {
                TokKind::Punct("<") => depth += 1,
                TokKind::Punct("<<") => depth += 2,
                TokKind::Punct(">") => depth -= 1,
                TokKind::Punct(">>") => depth -= 2,
                _ => {}
            }
            j += 1;
            if depth <= 0 {
                return j;
            }
        }
        end
    }

    /// Skip forward to one past the next `;` that sits outside every
    /// `()`/`[]`/`{}` group.
    fn skip_to_semi(&self, mut j: usize, end: usize) -> usize {
        let mut depth = 0usize;
        while j < end {
            let t = &self.toks[j];
            if t.is_punct("(") || t.is_punct("[") || t.is_punct("{") {
                depth += 1;
            } else if t.is_punct(")") || t.is_punct("]") || t.is_punct("}") {
                depth = depth.saturating_sub(1);
            } else if t.is_punct(";") && depth == 0 {
                return j + 1;
            }
            j += 1;
        }
        end
    }
}

/// Recursive descent over the token body of a `use` declaration.
/// `prefix` is the path accumulated so far.
fn parse_use_tree(toks: &[Token], prefix: &mut Vec<String>, out: &mut Vec<UseDecl>) {
    let saved = prefix.len();
    let mut j = 0usize;
    while j < toks.len() {
        let t = &toks[j];
        if let Some(n) = t.ident() {
            if n == "as" {
                // `path as alias`: rebind the last pushed segment.
                if let Some(alias) = toks.get(j + 1).and_then(|t| t.ident()) {
                    out.push(UseDecl { alias: alias.to_string(), path: prefix.clone() });
                    // Cancel the plain-alias emit for this leaf.
                    prefix.truncate(saved);
                    j += 2;
                    // Skip to the next `,` at this level (or end).
                    while j < toks.len() && !toks[j].is_punct(",") {
                        j += 1;
                    }
                    continue;
                }
            }
            prefix.push(n.to_string());
            j += 1;
            continue;
        }
        if t.is_punct("::") {
            j += 1;
            continue;
        }
        if t.is_punct("{") {
            // Group: find the matching close, recurse on each element.
            let mut depth = 1usize;
            let mut k = j + 1;
            let inner_start = k;
            while k < toks.len() && depth > 0 {
                if toks[k].is_punct("{") {
                    depth += 1;
                } else if toks[k].is_punct("}") {
                    depth -= 1;
                }
                k += 1;
            }
            let inner = &toks[inner_start..k.saturating_sub(1)];
            // Split inner at top-level commas; recurse with the prefix.
            let mut d = 0usize;
            let mut start = 0usize;
            for (idx, t) in inner.iter().enumerate() {
                if t.is_punct("{") {
                    d += 1;
                } else if t.is_punct("}") {
                    d = d.saturating_sub(1);
                } else if t.is_punct(",") && d == 0 {
                    parse_use_tree(&inner[start..idx], prefix, out);
                    start = idx + 1;
                }
            }
            parse_use_tree(&inner[start..], prefix, out);
            prefix.truncate(saved);
            return; // a group ends the tree at this level
        }
        if t.is_punct(",") {
            // Sibling at the same level (top-level `use a, b` is not legal
            // Rust, but groups hand us comma-split slices).
            break;
        }
        if t.is_punct("*") {
            // Glob import: nothing to alias.
            prefix.truncate(saved);
            return;
        }
        j += 1;
    }
    // Leaf: alias is the last segment (only if this branch added any).
    if prefix.len() > saved {
        if let Some(last) = prefix.last() {
            out.push(UseDecl { alias: last.clone(), path: prefix.clone() });
        }
    }
    prefix.truncate(saved);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer;

    fn parse(src: &str) -> ParsedFile {
        let toks = lexer::lex(src);
        let in_test = lexer::test_region_flags(&toks);
        parse_file("core::client", false, &toks, &in_test)
    }

    #[test]
    fn free_and_method_fns() {
        let p = parse(
            "pub fn free_one(a: u8, mut b: u16) -> u8 { a }\n\
             struct Client;\n\
             impl Client { pub fn upload(&self, data: &[u8]) -> u64 { 0 } fn internal(&mut self) {} }",
        );
        assert_eq!(p.fns.len(), 3);
        let f = &p.fns[0];
        assert_eq!(f.qname, "core::client::free_one");
        assert!(f.is_pub && !f.has_self);
        assert_eq!(f.params, ["a", "b"]);
        let up = &p.fns[1];
        assert_eq!(up.qname, "core::client::Client::upload");
        assert_eq!(up.owner.as_deref(), Some("Client"));
        assert!(up.is_pub && up.has_self);
        assert_eq!(up.params, ["data"]);
        assert!(!p.fns[2].is_pub);
    }

    #[test]
    fn trait_impl_gets_trait_name() {
        let p = parse(
            "impl Wire for Plaintext { fn decode(r: &mut Reader) -> Result<Self, CodecError> { todo() } }",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].trait_name.as_deref(), Some("Wire"));
        assert_eq!(p.fns[0].owner.as_deref(), Some("Plaintext"));
    }

    #[test]
    fn generic_impl_and_const_fn() {
        let p = parse(
            "impl<const N: usize> FixedUint<N> { pub const fn zero() -> Self { Self { limbs: [0; N] } } }",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].qname, "core::client::FixedUint::zero");
    }

    #[test]
    fn nested_mod_extends_module_path() {
        let p = parse("mod inner { pub fn deep() {} }");
        assert_eq!(p.fns[0].module, "core::client::inner");
        assert_eq!(p.fns[0].qname, "core::client::inner::deep");
    }

    #[test]
    fn cfg_test_fns_are_marked() {
        let p =
            parse("fn prod() {}\n#[cfg(test)]\nmod tests { fn helper() {} #[test]\nfn t() {} }");
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test && p.fns[2].is_test);
    }

    #[test]
    fn use_decls_flatten_groups_and_renames() {
        let p = parse(
            "use tpnr_crypto::{hash, rsa::RsaPublicKey};\nuse tpnr_net::codec as wire;\nuse std::collections::BTreeMap;",
        );
        assert!(p.uses.contains(&UseDecl {
            alias: "hash".into(),
            path: vec!["tpnr_crypto".into(), "hash".into()],
        }));
        assert!(p.uses.contains(&UseDecl {
            alias: "RsaPublicKey".into(),
            path: vec!["tpnr_crypto".into(), "rsa".into(), "RsaPublicKey".into()],
        }));
        assert!(p.uses.contains(&UseDecl {
            alias: "wire".into(),
            path: vec!["tpnr_net".into(), "codec".into()],
        }));
        assert!(p.uses.contains(&UseDecl {
            alias: "BTreeMap".into(),
            path: vec!["std".into(), "collections".into(), "BTreeMap".into()],
        }));
    }

    #[test]
    fn struct_fields_and_derive_debug() {
        let p = parse(
            "#[derive(Debug, Clone)]\npub struct KeyPair { pub public: Pk, private: Sk }\n\
             #[derive(Clone)]\nstruct Quiet { d: u8 }\nstruct Unit;",
        );
        assert_eq!(p.structs.len(), 3);
        assert!(p.structs[0].derives_debug);
        assert_eq!(p.structs[0].fields, ["public", "private"]);
        assert!(!p.structs[1].derives_debug);
        assert!(p.structs[2].fields.is_empty());
    }

    #[test]
    fn const_with_brackets_does_not_desync() {
        let p = parse("const TABLE: [u8; 4] = [0; 4];\npub fn after_const() {}");
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "after_const");
    }

    #[test]
    fn item_macro_bodies_are_opaque() {
        let p = parse(
            "thread_local! { static X: RefCell<u64> = RefCell::new(0); }\npub fn visible() {}",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].name, "visible");
    }

    #[test]
    fn fn_body_span_covers_braces() {
        let src = "fn a() { inner(1); }\nfn b() {}";
        let toks = lexer::lex(src);
        let in_test = lexer::test_region_flags(&toks);
        let p = parse_file("m", false, &toks, &in_test);
        let (s, e) = p.fns[0].body;
        assert!(toks[s].is_punct("{") && toks[e - 1].is_punct("}"));
        assert!(toks[s..e].iter().any(|t| t.is_ident("inner")));
        assert!(!toks[p.fns[1].body.0..p.fns[1].body.1].iter().any(|t| t.is_ident("inner")));
    }

    #[test]
    fn where_clause_and_return_groups() {
        let p = parse(
            "pub fn g<F>(f: F) -> Result<[u8; 32], E> where F: Fn() -> u8 { f(); Ok([0; 32]) }",
        );
        assert_eq!(p.fns.len(), 1);
        assert_eq!(p.fns[0].params, ["f"]);
        let (s, e) = p.fns[0].body;
        assert!(s < e);
    }
}
