//! `tpnr-lint` binary: walk every `.rs` file in the workspace, run the
//! rule set and the interprocedural passes, honor `lint-allow.toml`,
//! and report.
//!
//! Exit codes: 0 = clean (all findings allowlisted, no stale allowlist
//! entries), 1 = unallowlisted findings or stale allowlist entries,
//! 2 = usage or I/O error.

#![forbid(unsafe_code)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use tpnr_lint::{allow::Allowlist, jsonout, lint_files, sarif, FileInput, Summary};

const USAGE: &str = "usage: tpnr-lint [--root DIR] [--json] [--sarif FILE] [--allowlist FILE]";

fn main() -> ExitCode {
    let mut root: Option<PathBuf> = None;
    let mut json = false;
    let mut sarif_path: Option<PathBuf> = None;
    let mut allow_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(d) => root = Some(PathBuf::from(d)),
                None => return usage_error("--root needs a directory"),
            },
            "--allowlist" => match args.next() {
                Some(f) => allow_path = Some(PathBuf::from(f)),
                None => return usage_error("--allowlist needs a file"),
            },
            "--sarif" => match args.next() {
                Some(f) => sarif_path = Some(PathBuf::from(f)),
                None => return usage_error("--sarif needs an output file (`-` for stdout)"),
            },
            "--json" => json = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => return usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let root = match root.or_else(find_workspace_root) {
        Some(r) => r,
        None => {
            eprintln!("tpnr-lint: cannot locate the workspace root; pass --root");
            return ExitCode::from(2);
        }
    };

    let allow_file = allow_path.unwrap_or_else(|| root.join("lint-allow.toml"));
    let allow = if allow_file.exists() {
        let text = match std::fs::read_to_string(&allow_file) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("tpnr-lint: reading {}: {e}", allow_file.display());
                return ExitCode::from(2);
            }
        };
        match Allowlist::parse(&text) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("tpnr-lint: {e}");
                return ExitCode::from(2);
            }
        }
    } else {
        Allowlist::empty()
    };

    let mut files = Vec::new();
    if let Err(e) = collect_rs_files(&root, &root, &mut files) {
        eprintln!("tpnr-lint: walking {}: {e}", root.display());
        return ExitCode::from(2);
    }
    files.sort_by(|a, b| a.path.cmp(&b.path));

    let findings = lint_files(&files, &allow);
    let summary = Summary::of(&files, &findings);

    if json {
        print!("{}", jsonout::render(&findings, &summary));
    } else {
        for f in &findings {
            if !f.allowed {
                println!("{}:{}:{} {} {}", f.file, f.line, f.col, f.rule, f.message);
            }
        }
    }
    if let Some(p) = sarif_path {
        let rendered = sarif::render(&findings);
        if p.as_os_str() == "-" {
            print!("{rendered}");
        } else if let Err(e) = std::fs::write(&p, rendered) {
            eprintln!("tpnr-lint: writing {}: {e}", p.display());
            return ExitCode::from(2);
        }
    }
    // A stale allowlist entry is a hard failure: it means a finding was
    // fixed (or a path moved) and the justification now suppresses
    // nothing — left alone it would silently mask the next regression.
    let stale = allow.unused(&findings);
    for s in &stale {
        eprintln!(
            "tpnr-lint: error: unused allowlist entry {} @ {} ({})",
            s.rule, s.path, s.justification
        );
    }
    // The one-line coverage summary CI logs grep for.
    println!("{}", summary.line());

    if summary.findings > summary.allowlisted || !stale.is_empty() {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn usage_error(msg: &str) -> ExitCode {
    eprintln!("tpnr-lint: {msg}\n{USAGE}");
    ExitCode::from(2)
}

/// Locate the workspace root: prefer the current directory if it holds a
/// `[workspace]` manifest (the `cargo run` case from the repo root), else
/// walk up from this crate's own manifest directory.
fn find_workspace_root() -> Option<PathBuf> {
    let here = PathBuf::from(".");
    if is_workspace_root(&here) {
        return Some(here);
    }
    let mut dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    while dir.pop() {
        if is_workspace_root(&dir) {
            return Some(dir);
        }
    }
    None
}

fn is_workspace_root(dir: &Path) -> bool {
    std::fs::read_to_string(dir.join("Cargo.toml"))
        .map(|t| t.contains("[workspace]"))
        .unwrap_or(false)
}

/// Recursively collect `.rs` files under `dir`, skipping build output,
/// VCS metadata, and hidden directories. Paths are stored
/// workspace-relative with `/` separators so findings and allowlist
/// entries are portable.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<FileInput>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures` holds the lint's own test corpus: deliberately
            // broken code that must not be linted as workspace source.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy().into_owned())
                .collect::<Vec<_>>()
                .join("/");
            let source = std::fs::read_to_string(&path)?;
            out.push(FileInput { path: rel, source });
        }
    }
    Ok(())
}
