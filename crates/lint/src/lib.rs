//! `tpnr-lint`: a dependency-free, protocol-invariant static analyzer for
//! the TPNR workspace.
//!
//! The paper's security argument rests on invariants that general-purpose
//! tools cannot see: evidence must be signed-then-encrypted by dedicated
//! constructors, digests must be compared in constant time, protocol
//! timeliness must come from the simulated clock, and serialized output
//! must iterate deterministically. Each rule in [`rules`] encodes one such
//! invariant as a token-level heuristic over the hand-rolled [`lexer`].
//!
//! The engine operates on in-memory `(path, source)` pairs so rule tests
//! need no filesystem; the binary in `main.rs` walks the workspace and
//! feeds real files through the same path.

#![forbid(unsafe_code)]

pub mod allow;
pub mod callgraph;
pub mod jsonout;
pub mod lexer;
pub mod parser;
pub mod passes;
pub mod rules;
pub mod sarif;

use lexer::Token;

/// One source file to analyze. `path` is workspace-relative with `/`
/// separators (used for module mapping and allowlist matching).
#[derive(Debug, Clone)]
pub struct FileInput {
    pub path: String,
    pub source: String,
}

/// A single rule violation at a source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub message: String,
    /// Set by the engine when a `lint-allow.toml` entry suppresses this.
    pub allowed: bool,
}

/// Per-file context handed to each rule.
pub struct FileCtx<'a> {
    pub path: &'a str,
    /// `crate::module` path, e.g. `core::client`; `None` for files that do
    /// not map to a library module (integration tests, benches, examples).
    pub module: Option<String>,
    /// True for files under `tests/`, `benches/`, or `examples/`.
    pub is_test_file: bool,
    pub tokens: &'a [Token],
    /// Parallel to `tokens`: inside a `#[cfg(test)]` / `#[test]` region.
    pub in_test: &'a [bool],
}

impl FileCtx<'_> {
    /// Module path as `&str` for scope checks (`""` when unknown).
    pub fn module_str(&self) -> &str {
        self.module.as_deref().unwrap_or("")
    }

    /// Last segment of the module path (`client` for `core::client`).
    pub fn module_leaf(&self) -> &str {
        self.module_str().rsplit("::").next().unwrap_or("")
    }
}

/// Map a workspace-relative path to a `crate::module` path.
///
/// `crates/core/src/client.rs` → `core::client`; `crates/net/src/lib.rs` →
/// `net`; the root package `src/lib.rs` → `tpnr`. Files under `tests/`,
/// `benches/`, or `examples/` get no module and are flagged as test files.
pub fn module_of(path: &str) -> (Option<String>, bool) {
    let parts: Vec<&str> = path.split('/').collect();
    let is_test_file = parts.iter().any(|p| *p == "tests" || *p == "benches" || *p == "examples");
    // Find the `src` component and the crate name before it.
    let src_idx = match parts.iter().position(|p| *p == "src") {
        Some(i) => i,
        None => return (None, is_test_file),
    };
    if is_test_file {
        return (None, true);
    }
    let crate_name = if src_idx == 0 {
        "tpnr".to_string()
    } else {
        // Directory holding `src` names the crate (`crates/<name>/src/…`
        // in this workspace, `<name>/src/…` for any stray layout).
        parts[src_idx - 1].replace('-', "_")
    };
    let mut module = crate_name;
    for seg in &parts[src_idx + 1..] {
        let seg = seg.trim_end_matches(".rs");
        if seg.is_empty() || seg == "lib" || seg == "main" || seg == "mod" {
            continue;
        }
        module.push_str("::");
        module.push_str(&seg.replace('-', "_"));
    }
    (Some(module), false)
}

/// One lexed-and-parsed workspace file, shared by the per-file rules
/// and the interprocedural passes.
#[derive(Debug, Clone)]
pub struct WsFile {
    pub path: String,
    pub module: Option<String>,
    pub is_test_file: bool,
    pub tokens: Vec<Token>,
    pub in_test: Vec<bool>,
    pub parsed: parser::ParsedFile,
}

/// The whole workspace in one structure: input to the call graph.
#[derive(Debug, Clone, Default)]
pub struct Workspace {
    pub files: Vec<WsFile>,
}

impl Workspace {
    /// Lex and parse every input file.
    pub fn build(files: &[FileInput]) -> Workspace {
        let mut out = Workspace::default();
        for f in files {
            let tokens = lexer::lex(&f.source);
            let in_test = lexer::test_region_flags(&tokens);
            let (module, is_test_file) = module_of(&f.path);
            let parsed = parser::parse_file(
                module.as_deref().unwrap_or(""),
                is_test_file,
                &tokens,
                &in_test,
            );
            out.files.push(WsFile {
                path: f.path.clone(),
                module,
                is_test_file,
                tokens,
                in_test,
                parsed,
            });
        }
        out
    }
}

/// Run every per-file rule and every interprocedural pass over the
/// workspace; findings come back sorted by (file, line, col, rule) with
/// `allowed` flags applied from `allow`.
pub fn lint_files(files: &[FileInput], allow: &allow::Allowlist) -> Vec<Finding> {
    let ws = Workspace::build(files);
    let mut findings = Vec::new();
    for f in &ws.files {
        let ctx = FileCtx {
            path: &f.path,
            module: f.module.clone(),
            is_test_file: f.is_test_file,
            tokens: &f.tokens,
            in_test: &f.in_test,
        };
        for rule in rules::ALL {
            (rule.check)(&ctx, &mut findings);
        }
    }
    let graph = callgraph::Graph::build(&ws);
    let pctx = passes::PassCtx { ws: &ws, graph: &graph };
    for pass in passes::ALL {
        (pass.run)(&pctx, &mut findings);
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.col, a.rule).cmp(&(b.file.as_str(), b.line, b.col, b.rule))
    });
    findings.dedup_by(|a, b| {
        a.file == b.file && a.line == b.line && a.col == b.col && a.rule == b.rule
    });
    for finding in &mut findings {
        if allow.permits(&finding.file, finding.rule) {
            finding.allowed = true;
        }
    }
    findings
}

/// Summary counts for the one-line CI report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    pub files: usize,
    pub rules: usize,
    pub findings: usize,
    pub allowlisted: usize,
}

impl Summary {
    pub fn of(files: &[FileInput], findings: &[Finding]) -> Summary {
        Summary {
            files: files.len(),
            rules: rules::ALL.len() + passes::ALL.len(),
            findings: findings.len(),
            allowlisted: findings.iter().filter(|f| f.allowed).count(),
        }
    }

    /// `N files, M rules, K findings, A allowlisted`
    pub fn line(&self) -> String {
        format!(
            "{} files, {} rules, {} findings, {} allowlisted",
            self.files, self.rules, self.findings, self.allowlisted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn module_mapping() {
        assert_eq!(module_of("crates/core/src/client.rs"), (Some("core::client".into()), false));
        assert_eq!(module_of("crates/net/src/lib.rs"), (Some("net".into()), false));
        assert_eq!(module_of("src/lib.rs"), (Some("tpnr".into()), false));
        assert_eq!(
            module_of("crates/criterion-shim/src/lib.rs"),
            (Some("criterion_shim".into()), false)
        );
        assert_eq!(module_of("crates/core/tests/resolve_edge_cases.rs"), (None, true));
        assert_eq!(module_of("crates/bench/benches/evidence.rs"), (None, true));
        assert_eq!(module_of("examples/demo.rs"), (None, true));
    }

    #[test]
    fn findings_sorted_and_allow_applied() {
        let files = vec![FileInput {
            path: "crates/core/src/obs.rs".into(),
            source: "use std::collections::HashMap;\nstruct S { m: HashMap<u8, u8> }".into(),
        }];
        let allow = allow::Allowlist::parse(
            "[[allow]]\nrule = \"DET-ORDER\"\npath = \"crates/core/src/obs.rs\"\njustification = \"test\"\n",
        )
        .unwrap();
        let findings = lint_files(&files, &allow);
        assert_eq!(findings.len(), 2);
        assert!(findings.iter().all(|f| f.allowed));
        assert!(findings[0].line <= findings[1].line);
    }
}
