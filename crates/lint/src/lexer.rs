//! A small hand-rolled Rust lexer.
//!
//! The rules in this crate are token-level heuristics, so the lexer's only
//! hard job is to *never* emit tokens from non-code regions: line comments,
//! (nested) block comments, string literals, raw string literals, byte
//! strings, and char literals. Everything else is classified coarsely into
//! identifiers, literals, lifetimes, and punctuation.
//!
//! Rust subtleties this lexer gets right (they are all covered by tests):
//! - block comments nest (`/* a /* b */ c */` is one comment);
//! - raw strings `r#"…"#` count their `#` fence and ignore escapes;
//! - a `\` at the end of a `//` comment does **not** continue the comment
//!   onto the next line (unlike C);
//! - `'a'` is a char literal but `'a` in `<'a>` is a lifetime;
//! - char literals may contain `"` and escaped quotes.

/// Coarse token classification — just enough for the rule heuristics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `HashMap`, `impl`, …).
    Ident(String),
    /// Integer literal, including any type suffix (`0`, `8usize`, `0xff`).
    Int,
    /// Float literal (`1.5`, `2e9`).
    Float,
    /// String / raw-string / byte-string / char / byte-char literal.
    Lit,
    /// Lifetime (`'a`, `'static`).
    Lifetime,
    /// Operator or punctuation, longest-match (`==`, `::`, `..=`, `{`, …).
    Punct(&'static str),
}

/// A token plus its 1-based source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    pub kind: TokKind,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The identifier text, if this token is an identifier.
    pub fn ident(&self) -> Option<&str> {
        match &self.kind {
            TokKind::Ident(s) => Some(s.as_str()),
            _ => None,
        }
    }

    /// True when this token is the given punctuation.
    pub fn is_punct(&self, p: &str) -> bool {
        matches!(&self.kind, TokKind::Punct(q) if *q == p)
    }

    /// True when this token is the given identifier.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }
}

/// Multi-character punctuation, longest first so matching is greedy.
const PUNCTS: &[&str] = &[
    "<<=", ">>=", "...", "..=", "==", "!=", "<=", ">=", "&&", "||", "::", "->", "=>", "..", "+=",
    "-=", "*=", "/=", "%=", "^=", "&=", "|=", "<<", ">>", "+", "-", "*", "/", "%", "^", "&", "|",
    "!", "=", "<", ">", "(", ")", "[", "]", "{", "}", ",", ";", ":", ".", "#", "?", "@", "$", "~",
];

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn new(src: &str) -> Self {
        Cursor { chars: src.chars().collect(), pos: 0, line: 1, col: 1 }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn eof(&self) -> bool {
        self.pos >= self.chars.len()
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lex `src` into a token stream. Comments and literal *contents* are
/// swallowed; literals become a single [`TokKind::Lit`] token at the
/// position of their opening quote/prefix.
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while !cur.eof() {
        let line = cur.line;
        let col = cur.col;
        let c = match cur.peek(0) {
            Some(c) => c,
            None => break,
        };
        // Line comment. Note: a trailing `\` does NOT continue the comment.
        if c == '/' && cur.peek(1) == Some('/') {
            while let Some(c) = cur.peek(0) {
                if c == '\n' {
                    break;
                }
                cur.bump();
            }
            continue;
        }
        // Block comment, which nests in Rust.
        if c == '/' && cur.peek(1) == Some('*') {
            cur.bump();
            cur.bump();
            let mut depth = 1usize;
            while depth > 0 && !cur.eof() {
                if cur.peek(0) == Some('/') && cur.peek(1) == Some('*') {
                    cur.bump();
                    cur.bump();
                    depth += 1;
                } else if cur.peek(0) == Some('*') && cur.peek(1) == Some('/') {
                    cur.bump();
                    cur.bump();
                    depth -= 1;
                } else {
                    cur.bump();
                }
            }
            continue;
        }
        if c.is_whitespace() {
            cur.bump();
            continue;
        }
        // Raw / byte / raw-byte string prefixes must be checked before
        // generic identifier lexing: `r"…"`, `r#"…"#`, `b"…"`, `b'…'`,
        // `br"…"`, `br#"…"#`.
        if c == 'r' && matches!(cur.peek(1), Some('"') | Some('#')) && raw_string_ahead(&cur, 1) {
            cur.bump(); // r
            eat_raw_string(&mut cur);
            out.push(Token { kind: TokKind::Lit, line, col });
            continue;
        }
        if c == 'b' {
            if cur.peek(1) == Some('"') {
                cur.bump();
                cur.bump();
                eat_quoted(&mut cur, '"');
                out.push(Token { kind: TokKind::Lit, line, col });
                continue;
            }
            if cur.peek(1) == Some('\'') {
                cur.bump();
                cur.bump();
                eat_quoted(&mut cur, '\'');
                out.push(Token { kind: TokKind::Lit, line, col });
                continue;
            }
            if cur.peek(1) == Some('r')
                && matches!(cur.peek(2), Some('"') | Some('#'))
                && raw_string_ahead(&cur, 2)
            {
                cur.bump();
                cur.bump();
                eat_raw_string(&mut cur);
                out.push(Token { kind: TokKind::Lit, line, col });
                continue;
            }
        }
        if is_ident_start(c) {
            let mut name = String::new();
            while let Some(c) = cur.peek(0) {
                if is_ident_continue(c) {
                    name.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            out.push(Token { kind: TokKind::Ident(name), line, col });
            continue;
        }
        if c.is_ascii_digit() {
            let kind = eat_number(&mut cur);
            out.push(Token { kind, line, col });
            continue;
        }
        if c == '"' {
            cur.bump();
            eat_quoted(&mut cur, '"');
            out.push(Token { kind: TokKind::Lit, line, col });
            continue;
        }
        if c == '\'' {
            // Disambiguate char literal from lifetime. After the quote:
            // an escape is always a char; an ident char followed by `'`
            // closes a char literal; otherwise it is a lifetime.
            if cur.peek(1) == Some('\\') {
                cur.bump();
                eat_quoted(&mut cur, '\'');
                out.push(Token { kind: TokKind::Lit, line, col });
            } else if cur.peek(1).is_some_and(is_ident_start) && cur.peek(2) != Some('\'') {
                cur.bump();
                while cur.peek(0).is_some_and(is_ident_continue) {
                    cur.bump();
                }
                out.push(Token { kind: TokKind::Lifetime, line, col });
            } else {
                // Char literal: any single char (possibly `"`) then `'`.
                cur.bump();
                eat_quoted(&mut cur, '\'');
                out.push(Token { kind: TokKind::Lit, line, col });
            }
            continue;
        }
        // Punctuation, longest match first.
        let mut matched = false;
        for p in PUNCTS {
            if matches_at(&cur, p) {
                for _ in 0..p.chars().count() {
                    cur.bump();
                }
                out.push(Token { kind: TokKind::Punct(p), line, col });
                matched = true;
                break;
            }
        }
        if !matched {
            // Unknown character (shouldn't happen in valid Rust): skip it.
            cur.bump();
        }
    }
    out
}

/// After an `r` (at `cur.pos + offset`), is this really a raw string
/// (`#…#"` fence or a direct `"`), as opposed to e.g. `r#ident`?
fn raw_string_ahead(cur: &Cursor, offset: usize) -> bool {
    let mut i = offset;
    while cur.peek(i) == Some('#') {
        i += 1;
    }
    cur.peek(i) == Some('"')
}

/// Consume `#…#"…"#…#` with the cursor positioned at the first `#` or `"`.
fn eat_raw_string(cur: &mut Cursor) {
    let mut hashes = 0usize;
    while cur.peek(0) == Some('#') {
        hashes += 1;
        cur.bump();
    }
    if cur.peek(0) != Some('"') {
        return; // not actually a raw string; bail without consuming more
    }
    cur.bump();
    // Scan for `"` followed by `hashes` hashes. No escapes in raw strings.
    'outer: while !cur.eof() {
        if cur.bump() == Some('"') {
            for i in 0..hashes {
                if cur.peek(i) != Some('#') {
                    continue 'outer;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            return;
        }
    }
}

/// Consume a quoted literal body (after the opening quote), honoring `\`
/// escapes, until the closing `close` quote.
fn eat_quoted(cur: &mut Cursor, close: char) {
    while let Some(c) = cur.bump() {
        if c == '\\' {
            cur.bump(); // skip the escaped char (covers \' \" \\ \n …)
        } else if c == close {
            return;
        }
    }
}

/// Consume a numeric literal. `1.5` / `2e9` are floats; `0..n` keeps the
/// range operator intact; type suffixes (`8usize`, `0xffu8`) are swallowed.
fn eat_number(cur: &mut Cursor) -> TokKind {
    let mut float = false;
    // Leading digits (covers the 0x/0o/0b prefix bodies too, since hex
    // digits and `_` fall under is_ident_continue below).
    while let Some(c) = cur.peek(0).filter(|c| is_ident_continue(*c)) {
        // `2e9` / `1e-3`: exponent marker may be followed by a sign.
        cur.bump();
        if (c == 'e' || c == 'E') && matches!(cur.peek(0), Some('+') | Some('-')) {
            float = true;
            cur.bump();
        }
    }
    // A `.` continues the number only if followed by a digit (so `0..n`
    // and `1.method()` leave the dot alone).
    if cur.peek(0) == Some('.') && cur.peek(1).is_some_and(|c| c.is_ascii_digit()) {
        float = true;
        cur.bump();
        while cur.peek(0).is_some_and(is_ident_continue) {
            cur.bump();
        }
    }
    if float {
        TokKind::Float
    } else {
        TokKind::Int
    }
}

fn matches_at(cur: &Cursor, p: &str) -> bool {
    for (i, pc) in p.chars().enumerate() {
        if cur.peek(i) != Some(pc) {
            return false;
        }
    }
    true
}

/// Per-token "is inside a `#[cfg(test)]` / `#[test]` region" flags.
///
/// A test region starts at the attribute and covers the following item:
/// any further attributes, then either a balanced `{…}` block or a
/// terminating `;`. `#[cfg(not(test))]` is *not* a test region.
pub fn test_region_flags(tokens: &[Token]) -> Vec<bool> {
    let mut flags = vec![false; tokens.len()];
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct("#") && i + 1 < tokens.len() && tokens[i + 1].is_punct("[") {
            let (attr_end, is_test) = scan_attr(tokens, i + 1);
            if is_test {
                let region_end = scan_item_end(tokens, attr_end);
                for f in flags.iter_mut().take(region_end).skip(i) {
                    *f = true;
                }
                i = region_end;
                continue;
            }
            i = attr_end;
            continue;
        }
        i += 1;
    }
    flags
}

/// Scan a `[…]` attribute starting at the `[` index. Returns (index one
/// past the closing `]`, whether this is a test attribute).
fn scan_attr(tokens: &[Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut has_cfg_or_bare = false;
    let mut j = open;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct("[") {
            depth += 1;
        } else if t.is_punct("]") {
            depth -= 1;
            if depth == 0 {
                j += 1;
                break;
            }
        } else if let Some(name) = t.ident() {
            match name {
                "test" => {
                    has_test = true;
                    // `#[test]` bare, or `#[tokio::test]`-style: treat the
                    // first ident being `test`-ish as a test marker.
                    if j == open + 1 {
                        has_cfg_or_bare = true;
                    }
                }
                "cfg" | "cfg_attr" => has_cfg_or_bare = true,
                "not" => has_not = true,
                _ => {}
            }
        }
        j += 1;
    }
    (j, has_test && has_cfg_or_bare && !has_not)
}

/// From the first token after an attribute, skip any further attributes
/// and return the index one past the guarded item (balanced `{…}`, or the
/// `;` for brace-less items like `mod tests;`).
fn scan_item_end(tokens: &[Token], mut i: usize) -> usize {
    // Skip stacked attributes on the same item.
    while i + 1 < tokens.len() && tokens[i].is_punct("#") && tokens[i + 1].is_punct("[") {
        let (end, _) = scan_attr(tokens, i + 1);
        i = end;
    }
    let mut depth = 0usize;
    while i < tokens.len() {
        let t = &tokens[i];
        if t.is_punct("{") {
            depth += 1;
        } else if t.is_punct("}") {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return i + 1;
            }
        } else if t.is_punct(";") && depth == 0 {
            return i + 1;
        }
        i += 1;
    }
    tokens.len()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .into_iter()
            .filter_map(|t| match t.kind {
                TokKind::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn line_comment_swallowed() {
        assert_eq!(idents("let x = 1; // unwrap() unsafe\nlet y;"), ["let", "x", "let", "y"]);
    }

    #[test]
    fn line_comment_backslash_does_not_continue() {
        // Unlike C, `\` at end of a `//` comment does not splice lines:
        // the second line is code.
        let src = "// comment ends here \\\nlet real_code = 1;";
        assert_eq!(idents(src), ["let", "real_code"]);
    }

    #[test]
    fn nested_block_comment_swallowed() {
        let src = "/* outer /* unsafe inner */ still comment */ let z;";
        assert_eq!(idents(src), ["let", "z"]);
    }

    #[test]
    fn raw_string_contents_swallowed() {
        let src = r###"let s = r#"x.unwrap() == digest"#; let t;"###;
        assert_eq!(idents(src), ["let", "s", "let", "t"]);
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let src = r###"let a = b"unsafe"; let b2 = br#"unwrap()"#;"###;
        assert_eq!(idents(src), ["let", "a", "let", "b2"]);
    }

    #[test]
    fn byte_string_spans_stay_aligned() {
        // Every escaped byte inside `b"…"` must advance the column so
        // tokens *after* the literal carry accurate positions — findings
        // are keyed by (line, col), so a drift here misplaces them all.
        let toks = lex("let a = b\"un\\\"safe\"; z");
        let lit = toks.iter().find(|t| t.kind == TokKind::Lit).expect("literal token");
        assert_eq!((lit.line, lit.col), (1, 9));
        let z = toks.iter().find(|t| t.is_ident("z")).expect("trailing ident");
        assert_eq!((z.line, z.col), (1, 22));
    }

    #[test]
    fn raw_byte_string_spans_across_newlines() {
        // `br#"…"#` may span lines: the line counter must advance and the
        // column must reset inside the literal.
        let toks = lex("let x = br#\"a\nbb\"# + y;");
        let lit = toks.iter().find(|t| t.kind == TokKind::Lit).expect("literal token");
        assert_eq!((lit.line, lit.col), (1, 9));
        let y = toks.iter().find(|t| t.is_ident("y")).expect("trailing ident");
        assert_eq!((y.line, y.col), (2, 8));
    }

    #[test]
    fn raw_byte_string_multi_hash_terminator() {
        // `br##"…"##` only closes on a matching hash count: the inner
        // `"#` must not end the literal early.
        let toks = lex("let z = br##\"q\"# w\"##; k");
        let lits = toks.iter().filter(|t| t.kind == TokKind::Lit).count();
        assert_eq!(lits, 1, "inner \"# closed the literal early");
        let k = toks.iter().find(|t| t.is_ident("k")).expect("trailing ident");
        assert_eq!((k.line, k.col), (1, 24));
    }

    #[test]
    fn char_literal_with_quote() {
        // A char literal containing `"` must not open a string.
        let src = "let q = '\"'; let after = 1;";
        assert_eq!(idents(src), ["let", "q", "let", "after"]);
    }

    #[test]
    fn escaped_char_literal() {
        let src = "let q = '\\''; let nl = '\\n'; done();";
        assert_eq!(idents(src), ["let", "q", "let", "nl", "done"]);
    }

    #[test]
    fn lifetime_is_not_char() {
        let src = "fn f<'a>(x: &'a str) -> &'a str { x }";
        let toks = lex(src);
        let lifetimes = toks.iter().filter(|t| t.kind == TokKind::Lifetime).count();
        assert_eq!(lifetimes, 3);
        assert!(idents(src).contains(&"str".to_string()));
    }

    #[test]
    fn string_escapes() {
        let src = r#"let s = "she said \"hi\" \\"; let t;"#;
        assert_eq!(idents(src), ["let", "s", "let", "t"]);
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  bb");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn longest_match_punct() {
        let toks = lex("a == b != c .. d ..= e :: f");
        let puncts: Vec<&str> = toks
            .iter()
            .filter_map(|t| match t.kind {
                TokKind::Punct(p) => Some(p),
                _ => None,
            })
            .collect();
        assert_eq!(puncts, ["==", "!=", "..", "..=", "::"]);
    }

    #[test]
    fn range_keeps_int() {
        let toks = lex("for i in 0..reps { }");
        assert!(toks.iter().any(|t| t.kind == TokKind::Int));
        assert!(toks.iter().any(|t| t.is_punct("..")));
        assert!(!toks.iter().any(|t| t.kind == TokKind::Float));
    }

    #[test]
    fn float_lexes_as_float() {
        let toks = lex("let x = 1.5e3;");
        assert!(toks.iter().any(|t| t.kind == TokKind::Float));
    }

    #[test]
    fn cfg_test_region_detected() {
        let src = "fn prod() { a.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { b.unwrap(); } }";
        let toks = lex(src);
        let flags = test_region_flags(&toks);
        // The `b` ident is inside the test region; `a` is not.
        let a_idx = toks.iter().position(|t| t.is_ident("a")).unwrap();
        let b_idx = toks.iter().position(|t| t.is_ident("b")).unwrap();
        assert!(!flags[a_idx]);
        assert!(flags[b_idx]);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nmod prod { fn p() { x.unwrap(); } }";
        let toks = lex(src);
        let flags = test_region_flags(&toks);
        assert!(flags.iter().all(|f| !f));
    }

    #[test]
    fn test_attr_with_stacked_attrs() {
        let src = "#[test]\n#[ignore]\nfn t() { y.unwrap(); } fn prod() { z.unwrap(); }";
        let toks = lex(src);
        let flags = test_region_flags(&toks);
        let y_idx = toks.iter().position(|t| t.is_ident("y")).unwrap();
        let z_idx = toks.iter().position(|t| t.is_ident("z")).unwrap();
        assert!(flags[y_idx]);
        assert!(!flags[z_idx]);
    }
}
