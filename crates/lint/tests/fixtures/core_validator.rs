//! Fixture: panics confined to `#[cfg(test)]` code. `Validator` is an
//! entry-point owner, so a pass that fails to mask test regions would
//! report these.

pub struct Validator;

impl Validator {
    pub fn check(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn exercises_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
