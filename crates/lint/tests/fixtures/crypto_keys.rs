//! Fixture: key material flowing through a helper into a format sink.

pub struct KeyPair {
    pub public: u64,
    private_exp: u64,
}

impl KeyPair {
    pub fn audit(&self) {
        log_value(self.private_exp);
    }
}

fn log_value(v: u64) {
    println!("key material: {}", v);
}
