//! Fixture: a protocol entry point whose call chain crosses crates.

use tpnr_storage::blob;

pub struct Client;

impl Client {
    /// Protocol entry point: any panic reachable from here is a finding.
    pub fn handle(&self) -> u32 {
        blob::fetch_latest()
    }
}
