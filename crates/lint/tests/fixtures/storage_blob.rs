//! Fixture: a helper crate the old per-file NO-PANIC-PATH rule never
//! scanned. The seeded `.unwrap()` is only a bug because a protocol
//! entry point in *another crate* can reach it — exactly the edge the
//! call graph adds.

pub fn fetch_latest() -> u32 {
    parse_head().unwrap()
}

fn parse_head() -> Option<u32> {
    None
}
