//! Golden test: `tpnr-lint --json` output is byte-stable for a fixed
//! input set, and every line parses with a dependency-free JSON syntax
//! checker in the same style as the bench crate's `--validate-jsonl`.

use tpnr_lint::{allow::Allowlist, jsonout, lint_files, FileInput, Summary};

/// A four-file mini-workspace that lights up a textual rule, an
/// allowlisted rule, and an interprocedural pass (the PANIC-REACH
/// finding only exists because `core::client` reaches `storage::blob`
/// through a `use`-resolved cross-crate call edge).
fn fixture() -> Vec<FileInput> {
    vec![
        FileInput {
            path: "crates/bench/src/lib.rs".into(),
            source: "fn t0() { let _ = std::time::Instant::now(); }\n".into(),
        },
        FileInput {
            path: "crates/core/src/client.rs".into(),
            source: "use tpnr_storage::blob;\npub struct Client;\nimpl Client {\n    \
                     pub fn handle(&self) -> u32 { blob::fetch_latest() }\n}\n"
                .into(),
        },
        FileInput {
            path: "crates/core/src/obs.rs".into(),
            source: "use std::collections::HashMap;\n".into(),
        },
        FileInput {
            path: "crates/storage/src/blob.rs".into(),
            source: "pub fn fetch_latest() -> u32 { head().unwrap() }\n\
                     fn head() -> Option<u32> { None }\n"
                .into(),
        },
    ]
}

#[test]
fn json_output_is_stable() {
    let files = fixture();
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"NO-WALLCLOCK\"\npath = \"crates/bench/src/lib.rs\"\n\
         justification = \"fixture: host-facing measurement\"\n",
    )
    .unwrap();
    let findings = lint_files(&files, &allow);
    let summary = Summary::of(&files, &findings);
    let got = jsonout::render(&findings, &summary);
    let want = concat!(
        "{\"kind\":\"finding\",\"file\":\"crates/bench/src/lib.rs\",\"line\":1,\"col\":30,",
        "\"rule\":\"NO-WALLCLOCK\",\"message\":\"`Instant` outside net::time; protocol time ",
        "must come from the sim clock (use Clock / tpnr_net::time::HostStopwatch)\",",
        "\"allowed\":true}\n",
        "{\"kind\":\"finding\",\"file\":\"crates/core/src/obs.rs\",\"line\":1,\"col\":23,",
        "\"rule\":\"DET-ORDER\",\"message\":\"`HashMap` in a deterministic-output module; ",
        "iteration order is randomized — use BTreeMap\",\"allowed\":false}\n",
        "{\"kind\":\"finding\",\"file\":\"crates/storage/src/blob.rs\",\"line\":1,\"col\":39,",
        "\"rule\":\"PANIC-REACH\",\"message\":\"`.unwrap()` can panic and is reachable from ",
        "protocol entry `core::client::Client::handle` (core::client::Client::handle -> ",
        "storage::blob::fetch_latest); degrade into ValidationError instead\",",
        "\"allowed\":false}\n",
        "{\"kind\":\"summary\",\"files\":4,\"rules\":8,\"findings\":3,\"allowlisted\":1}\n",
    );
    assert_eq!(got, want);
}

#[test]
fn every_line_is_valid_json() {
    let files = fixture();
    let findings = lint_files(&files, &Allowlist::empty());
    let summary = Summary::of(&files, &findings);
    let out = jsonout::render(&findings, &summary);
    let mut lines = 0;
    for line in out.lines() {
        let mut p = Json::new(line);
        p.value().unwrap_or_else(|e| panic!("line {lines}: {e}: {line}"));
        p.expect_end().unwrap_or_else(|e| panic!("line {lines}: {e}: {line}"));
        lines += 1;
    }
    assert_eq!(lines, findings.len() + 1);
}

/// Minimal recursive-descent JSON syntax checker (values are not
/// retained, only validated) — same approach as `bench::report`'s
/// JSONL validator.
struct Json<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> Json<'a> {
    fn new(s: &'a str) -> Self {
        Json { b: s.as_bytes(), i: 0 }
    }

    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.ws();
        self.b.get(self.i).copied()
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", c as char, self.i))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!("unexpected {other:?} at byte {}", self.i)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.eat(b'{')?;
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.string()?;
            self.eat(b':')?;
            self.value()?;
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("bad object at {other:?}")),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.eat(b'[')?;
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(());
                }
                other => return Err(format!("bad array at {other:?}")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.eat(b'"')?;
        while let Some(&c) = self.b.get(self.i) {
            self.i += 1;
            match c {
                b'"' => return Ok(()),
                b'\\' => {
                    let esc = *self.b.get(self.i).ok_or("dangling escape")?;
                    self.i += 1;
                    match esc {
                        b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't' => {}
                        b'u' => {
                            for _ in 0..4 {
                                let h = *self.b.get(self.i).ok_or("short \\u escape")?;
                                if !h.is_ascii_hexdigit() {
                                    return Err("bad \\u escape".into());
                                }
                                self.i += 1;
                            }
                        }
                        _ => return Err("bad escape".into()),
                    }
                }
                c if c < 0x20 => return Err("raw control char in string".into()),
                _ => {}
            }
        }
        Err("unterminated string".into())
    }

    fn number(&mut self) -> Result<(), String> {
        let start = self.i;
        if self.b.get(self.i) == Some(&b'-') {
            self.i += 1;
        }
        while self
            .b
            .get(self.i)
            .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.i += 1;
        }
        if self.i == start {
            Err("empty number".into())
        } else {
            Ok(())
        }
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        self.ws();
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(())
        } else {
            Err(format!("expected `{word}`"))
        }
    }

    fn expect_end(&mut self) -> Result<(), String> {
        self.ws();
        if self.i == self.b.len() {
            Ok(())
        } else {
            Err(format!("trailing bytes at {}", self.i))
        }
    }
}
