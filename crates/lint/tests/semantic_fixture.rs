//! Integration test for the interprocedural passes, driven by the
//! fixture mini-crate under `tests/fixtures/`. Each fixture file is
//! posed at a synthetic workspace path so module names, crate roots,
//! and cross-crate `use` resolution behave exactly as in a real run.

use tpnr_lint::{allow::Allowlist, lint_files, FileInput, Finding};

fn fixture_workspace() -> Vec<FileInput> {
    vec![
        FileInput {
            path: "crates/core/src/client.rs".into(),
            source: include_str!("fixtures/core_client.rs").into(),
        },
        FileInput {
            path: "crates/storage/src/blob.rs".into(),
            source: include_str!("fixtures/storage_blob.rs").into(),
        },
        FileInput {
            path: "crates/crypto/src/keys.rs".into(),
            source: include_str!("fixtures/crypto_keys.rs").into(),
        },
        FileInput {
            path: "crates/core/src/validator.rs".into(),
            source: include_str!("fixtures/core_validator.rs").into(),
        },
    ]
}

fn run() -> Vec<Finding> {
    lint_files(&fixture_workspace(), &Allowlist::empty())
}

/// The acceptance case for the call-graph rewrite: the seeded
/// `.unwrap()` lives in `crates/storage`, a crate the old per-file
/// NO-PANIC-PATH rule never scanned; it is a finding only because
/// `Client::handle` (another crate) reaches it through a `use`-resolved
/// call edge. The finding is reported at the *seed site* so the
/// allowlist stays local, with the entry point and chain in the message.
#[test]
fn cross_crate_panic_is_caught_at_the_seed_site() {
    let hits: Vec<_> = run().into_iter().filter(|f| f.rule == "PANIC-REACH").collect();
    assert_eq!(hits.len(), 1, "exactly the seeded unwrap: {hits:?}");
    let f = &hits[0];
    assert_eq!(f.file, "crates/storage/src/blob.rs");
    assert_eq!((f.line, f.col), (7, 18));
    assert!(f.message.contains("`.unwrap()`"), "{}", f.message);
    assert!(f.message.contains("core::client::Client::handle"), "{}", f.message);
    assert!(
        f.message.contains("core::client::Client::handle -> storage::blob::fetch_latest"),
        "chain should name every hop: {}",
        f.message
    );
}

/// Taint through a same-module helper: `audit` passes the private
/// exponent to `log_value`, which formats its parameter. The leak is
/// reported at the call site inside `audit`, where the secret actually
/// escapes.
#[test]
fn secret_flow_through_helper_is_reported_at_the_call_site() {
    let hits: Vec<_> = run().into_iter().filter(|f| f.rule == "SECRET-FLOW").collect();
    assert_eq!(hits.len(), 1, "{hits:?}");
    let f = &hits[0];
    assert_eq!(f.file, "crates/crypto/src/keys.rs");
    assert!(f.message.contains("private_exp"), "{}", f.message);
    assert!(f.message.contains("crypto::keys::log_value"), "{}", f.message);
    assert!(f.message.contains("leaks that parameter"), "{}", f.message);
}

/// `#[cfg(test)]` code may panic freely: `Validator` is an entry-point
/// owner, but its only unwrap is inside a test module, so the fixture
/// must contribute zero findings of any rule.
#[test]
fn cfg_test_panics_are_not_findings() {
    let noise: Vec<_> =
        run().into_iter().filter(|f| f.file == "crates/core/src/validator.rs").collect();
    assert!(noise.is_empty(), "test-only code flagged: {noise:?}");
}
