//! Golden test: `--sarif` output is byte-stable for a fixed input set.
//! CI uploads this artifact, and code-scanning UIs key results by rule
//! id + location, so any change to the rendering must be deliberate —
//! this test makes it a reviewed diff.

use tpnr_lint::{allow::Allowlist, lint_files, sarif, FileInput};

/// Same shape as `golden_json.rs`: an allowlisted textual finding (to
/// pin the `suppressions` rendering) plus a cross-crate PANIC-REACH
/// finding from the semantic passes.
fn fixture() -> Vec<FileInput> {
    vec![
        FileInput {
            path: "crates/bench/src/lib.rs".into(),
            source: "fn t0() { let _ = std::time::Instant::now(); }\n".into(),
        },
        FileInput {
            path: "crates/core/src/client.rs".into(),
            source: "use tpnr_storage::blob;\npub struct Client;\nimpl Client {\n    \
                     pub fn handle(&self) -> u32 { blob::fetch_latest() }\n}\n"
                .into(),
        },
        FileInput {
            path: "crates/storage/src/blob.rs".into(),
            source: "pub fn fetch_latest() -> u32 { head().unwrap() }\n\
                     fn head() -> Option<u32> { None }\n"
                .into(),
        },
    ]
}

#[test]
fn sarif_output_is_stable() {
    let allow = Allowlist::parse(
        "[[allow]]\nrule = \"NO-WALLCLOCK\"\npath = \"crates/bench/src/lib.rs\"\n\
         justification = \"fixture: host-facing measurement\"\n",
    )
    .unwrap();
    let findings = lint_files(&fixture(), &allow);
    let got = sarif::render(&findings);
    let want = concat!(
        "{\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"version\":\"2.1.0\",",
        "\"runs\":[{\"tool\":{\"driver\":{\"name\":\"tpnr-lint\",\"rules\":[{\"id\":\"CT-CMP\"},",
        "{\"id\":\"NO-WALLCLOCK\"},{\"id\":\"DET-ORDER\"},{\"id\":\"EVIDENCE-CTOR\"},",
        "{\"id\":\"UNSAFE\"},{\"id\":\"PANIC-REACH\"},{\"id\":\"SECRET-FLOW\"},",
        "{\"id\":\"ALLOC-HOT\"}]}},\"results\":[",
        "{\"ruleId\":\"NO-WALLCLOCK\",\"level\":\"note\",\"message\":{\"text\":\"`Instant` ",
        "outside net::time; protocol time must come from the sim clock (use Clock / ",
        "tpnr_net::time::HostStopwatch)\"},\"locations\":[{\"physicalLocation\":",
        "{\"artifactLocation\":{\"uri\":\"crates/bench/src/lib.rs\"},\"region\":",
        "{\"startLine\":1,\"startColumn\":30}}}],\"suppressions\":[{\"kind\":\"external\",",
        "\"justification\":\"lint-allow.toml\"}]},",
        "{\"ruleId\":\"PANIC-REACH\",\"level\":\"error\",\"message\":{\"text\":\"`.unwrap()` ",
        "can panic and is reachable from protocol entry `core::client::Client::handle` ",
        "(core::client::Client::handle -> storage::blob::fetch_latest); degrade into ",
        "ValidationError instead\"},\"locations\":[{\"physicalLocation\":",
        "{\"artifactLocation\":{\"uri\":\"crates/storage/src/blob.rs\"},\"region\":",
        "{\"startLine\":1,\"startColumn\":39}}}]}",
        "]}]}\n",
    );
    assert_eq!(got, want);
}

#[test]
fn sarif_is_one_line() {
    let got = sarif::render(&lint_files(&fixture(), &Allowlist::empty()));
    assert_eq!(got.matches('\n').count(), 1);
    assert!(got.ends_with('\n'));
}
