//! Property tests for the canonical wire codec and the simulator: round-trip
//! identity, canonicity (decode ∘ encode ∘ decode is stable), hostile-input
//! safety, conservation of messages under loss/duplication, and
//! secure-channel soundness under random frame corruption.

use proptest::prelude::*;
use tpnr_crypto::{ChaChaRng, RsaKeyPair};
use tpnr_net::codec::{Reader, Wire, Writer};
use tpnr_net::secure;
use tpnr_net::sim::{LinkConfig, SimNet};
use tpnr_net::time::SimDuration;

#[derive(Debug, Clone, PartialEq)]
struct Record {
    id: u64,
    tag: u8,
    name: String,
    blob: Vec<u8>,
    ok: bool,
}

impl Wire for Record {
    fn encode(&self, w: &mut Writer) {
        w.u64(self.id).u8(self.tag).str(&self.name).bytes(&self.blob).bool(self.ok);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, tpnr_net::codec::CodecError> {
        Ok(Record { id: r.u64()?, tag: r.u8()?, name: r.str()?, blob: r.bytes()?, ok: r.bool()? })
    }
}

fn record_strategy() -> impl Strategy<Value = Record> {
    (
        any::<u64>(),
        any::<u8>(),
        "[a-zA-Z0-9 ]{0,32}",
        proptest::collection::vec(any::<u8>(), 0..256),
        any::<bool>(),
    )
        .prop_map(|(id, tag, name, blob, ok)| Record { id, tag, name, blob, ok })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn codec_roundtrip_and_canonicity(rec in record_strategy()) {
        let enc = rec.to_wire();
        let dec = Record::from_wire(&enc).unwrap();
        prop_assert_eq!(&dec, &rec);
        prop_assert_eq!(dec.to_wire(), enc);
    }

    #[test]
    fn codec_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Decoding arbitrary bytes must fail cleanly, never panic or
        // over-allocate.
        let _ = Record::from_wire(&bytes);
    }

    #[test]
    fn codec_rejects_all_truncations(rec in record_strategy()) {
        let enc = rec.to_wire();
        for cut in 0..enc.len() {
            prop_assert!(Record::from_wire(&enc[..cut]).is_err(), "cut {}", cut);
        }
    }

    #[test]
    fn simulator_conserves_messages(
        seed in any::<u64>(),
        n in 1usize..50,
        drop_prob in 0.0f64..1.0,
    ) {
        let mut net = SimNet::new(seed);
        let a = net.register("a");
        let b = net.register("b");
        net.set_link(a, b, LinkConfig::lossy(SimDuration::from_millis(1), drop_prob));
        for i in 0..n {
            net.send(a, b, vec![i as u8]);
        }
        net.run_until_quiet();
        let delivered = net.inbox_len(b) as u64;
        prop_assert_eq!(net.stats.sent, n as u64);
        prop_assert_eq!(delivered + net.stats.dropped, n as u64);
    }

    #[test]
    fn simulator_is_deterministic(seed in any::<u64>(), n in 1usize..30) {
        let run = |seed: u64| {
            let mut net = SimNet::new(seed);
            let a = net.register("a");
            let b = net.register("b");
            net.set_link(a, b, LinkConfig {
                latency: SimDuration::from_millis(5),
                jitter: SimDuration::from_millis(5),
                drop_prob: 0.3,
                dup_prob: 0.2,
            });
            for i in 0..n {
                net.send(a, b, vec![i as u8]);
            }
            net.run_until_quiet();
            let mut log = Vec::new();
            while let Some(e) = net.recv(b) {
                log.push((e.payload.clone(), e.delivered_at));
            }
            log
        };
        prop_assert_eq!(run(seed), run(seed));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn secure_channel_sound_under_corruption(
        frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..128), 1..8),
        corrupt_at in any::<usize>(),
    ) {
        let server = RsaKeyPair::insecure_test_key(200);
        let mut rng = ChaChaRng::seed_from_u64(7);
        let (mut client, mut sserver) = secure::establish_pair(&server, &mut rng).unwrap();
        for (i, f) in frames.iter().enumerate() {
            let sealed = client.seal(f);
            if i == corrupt_at % frames.len() {
                let mut bad = sealed.clone();
                let j = corrupt_at % bad.len();
                bad[j] ^= 0x80;
                // A corrupted frame must be rejected without advancing state…
                prop_assert!(sserver.open(&bad).is_err());
            }
            // …so the genuine frame still lands.
            prop_assert_eq!(&sserver.open(&sealed).unwrap(), f);
        }
    }
}
