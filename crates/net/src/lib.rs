//! # tpnr-net
//!
//! Deterministic network substrate for the TPNR reproduction:
//!
//! * [`bytes`] — shared immutable payload buffers ([`Bytes`]) so large
//!   objects cross the simulator, the codec and storage without deep
//!   copies;
//! * [`time`] — virtual clock ([`SimClock`]) so protocol timeouts are
//!   simulated, not slept;
//! * [`codec`] — canonical length-prefixed binary encoding (evidence is
//!   signed, so wire forms must be byte-unique);
//! * [`sim`] — discrete-event network with per-link latency/jitter/loss/
//!   duplication and an adversary [`sim::Interceptor`] hook (the §5 attacker
//!   owns the wire);
//! * [`secure`] — the paper-era "SSL" session layer: per-session
//!   confidentiality + integrity + in-order replay protection, and nothing
//!   more — which is precisely why the in-storage integrity gap of paper
//!   §2.4 exists;
//! * [`transport`] — the [`Transport`] contract the scheduler drives, so
//!   the same protocol code runs on the simulator and on real wires;
//! * [`tcp`] — the real-wire backends: loopback TCP ([`tcp::TcpNet`]) and
//!   an in-process deterministic channel ([`tcp::ChannelNet`]), sharing
//!   one length-prefixed frame format.

#![forbid(unsafe_code)]

pub mod bytes;
pub mod codec;
pub mod secure;
pub mod sim;
pub mod tcp;
pub mod time;
pub mod transport;

pub use bytes::Bytes;
pub use codec::{CodecError, Reader, Wire, Writer};
pub use secure::{ChannelError, SecureSession};
pub use sim::{Action, Envelope, Interceptor, LinkConfig, NetStats, NodeId, SimNet, TxnNetStats};
pub use tcp::{ChannelNet, TcpNet, WireFrame};
pub use time::{Clock, SimClock, SimDuration, SimTime};
pub use transport::Transport;
