//! Canonical binary wire codec.
//!
//! TPNR evidence is *signed*, so every structure that appears under a
//! signature must have exactly one byte representation. This module is a
//! tiny, hand-rolled, length-prefixed big-endian codec with that canonicity
//! guarantee (no maps, no floats, no optional-field ambiguity), used by the
//! protocol messages, the storage manifests and the secure-channel frames.

use crate::bytes::Bytes;
use std::fmt;

/// Decoding error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended before the structure was complete.
    UnexpectedEnd,
    /// A length prefix exceeds the sanity bound.
    LengthOverflow,
    /// An enum discriminant or magic value is unknown.
    BadDiscriminant(&'static str, u64),
    /// Trailing bytes after a complete structure.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEnd => write!(f, "unexpected end of input"),
            CodecError::LengthOverflow => write!(f, "length prefix too large"),
            CodecError::BadDiscriminant(what, v) => {
                write!(f, "unknown {what} discriminant {v}")
            }
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Upper bound on any single length-prefixed field (1 GiB) — prevents a
/// hostile length prefix from driving an allocation bomb.
pub const MAX_FIELD_LEN: usize = 1 << 30;

/// Canonical encoder.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a `u8`.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a big-endian `u16`.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u32`.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u64`.
    pub fn u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a bool as one byte (0/1).
    pub fn bool(&mut self, v: bool) -> &mut Self {
        self.buf.push(v as u8);
        self
    }

    /// Appends raw bytes with a `u32` length prefix.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        assert!(v.len() <= MAX_FIELD_LEN, "field too large to encode");
        self.buf.extend_from_slice(&(v.len() as u32).to_be_bytes());
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a UTF-8 string with a `u32` length prefix.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Appends fixed-width bytes with no length prefix (caller knows width).
    pub fn fixed(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Finishes and returns the encoded buffer.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    /// Finishes into a plain `Vec<u8>`.
    pub fn finish_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Finishes into a shared immutable buffer (pure move, no copy).
    pub fn finish_bytes(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Canonical decoder over a borrowed buffer.
pub struct Reader<'a> {
    buf: &'a [u8],
    /// Bytes consumed so far (offset of `buf[0]` within the original
    /// input), used by [`Reader::bytes_shared`] to map positions back
    /// into `origin`.
    consumed: usize,
    /// When decoding out of a shared buffer, the buffer itself — byte
    /// fields can then be returned as zero-copy subviews.
    origin: Option<&'a Bytes>,
}

impl<'a> Reader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, consumed: 0, origin: None }
    }

    /// Wraps a shared buffer; [`Reader::bytes_shared`] fields decode as
    /// zero-copy subviews of `origin`'s allocation.
    pub fn with_origin(origin: &'a Bytes) -> Self {
        Reader { buf: origin, consumed: 0, origin: Some(origin) }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len()
    }

    /// Fails unless the input was consumed exactly.
    pub fn expect_end(&self) -> Result<(), CodecError> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes(self.buf.len()))
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.buf.len() < n {
            return Err(CodecError::UnexpectedEnd);
        }
        let (head, rest) = self.buf.split_at(n);
        self.buf = rest;
        self.consumed += n;
        Ok(head)
    }

    /// Reads a `u8`.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        self.take(1)?.first().copied().ok_or(CodecError::UnexpectedEnd)
    }

    /// Reads a big-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, CodecError> {
        let b: [u8; 2] = self.take(2)?.try_into().map_err(|_| CodecError::UnexpectedEnd)?;
        Ok(u16::from_be_bytes(b))
    }

    /// Reads a big-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, CodecError> {
        let b: [u8; 4] = self.take(4)?.try_into().map_err(|_| CodecError::UnexpectedEnd)?;
        Ok(u32::from_be_bytes(b))
    }

    /// Reads a big-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b: [u8; 8] = self.take(8)?.try_into().map_err(|_| CodecError::UnexpectedEnd)?;
        Ok(u64::from_be_bytes(b))
    }

    /// Reads a bool; any byte other than 0/1 is non-canonical and rejected.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(CodecError::BadDiscriminant("bool", v as u64)),
        }
    }

    /// Reads a `u32`-length-prefixed byte field.
    pub fn bytes(&mut self) -> Result<Vec<u8>, CodecError> {
        let len = self.u32()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(CodecError::LengthOverflow);
        }
        Ok(self.take(len)?.to_vec())
    }

    /// Reads a `u32`-length-prefixed byte field as shared [`Bytes`].
    ///
    /// When the reader was built with [`Reader::with_origin`] the result
    /// is a zero-copy subview of the origin allocation; otherwise the
    /// field is deep-copied (and counted by the [`Bytes`] copy counters).
    pub fn bytes_shared(&mut self) -> Result<Bytes, CodecError> {
        let len = self.u32()? as usize;
        if len > MAX_FIELD_LEN {
            return Err(CodecError::LengthOverflow);
        }
        let start = self.consumed;
        let field = self.take(len)?;
        match self.origin {
            Some(origin) => Ok(origin.slice(start..start + len)),
            None => Ok(Bytes::copy_from_slice(field)),
        }
    }

    /// Reads a length-prefixed UTF-8 string (invalid UTF-8 is rejected).
    pub fn str(&mut self) -> Result<String, CodecError> {
        String::from_utf8(self.bytes()?).map_err(|_| CodecError::BadDiscriminant("utf-8 string", 0))
    }

    /// Reads exactly `n` bytes (no prefix).
    pub fn fixed(&mut self, n: usize) -> Result<Vec<u8>, CodecError> {
        Ok(self.take(n)?.to_vec())
    }

    /// Reads a fixed-size array.
    pub fn array<const N: usize>(&mut self) -> Result<[u8; N], CodecError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }
}

/// Writes `body` as one length-prefixed frame (`u32` big-endian length,
/// then the body) — the stream framing the real-socket transport uses, with
/// the same [`MAX_FIELD_LEN`] sanity bound as in-memory decoding.
pub fn write_frame(w: &mut impl std::io::Write, body: &[u8]) -> std::io::Result<()> {
    assert!(body.len() <= MAX_FIELD_LEN, "frame too large to encode");
    w.write_all(&(body.len() as u32).to_be_bytes())?;
    w.write_all(body)
}

/// Reads one length-prefixed frame written by [`write_frame`]. A hostile
/// length prefix beyond [`MAX_FIELD_LEN`] is rejected before allocating.
pub fn read_frame(r: &mut impl std::io::Read) -> std::io::Result<Vec<u8>> {
    let mut len = [0u8; 4];
    r.read_exact(&mut len)?;
    let len = u32::from_be_bytes(len) as usize;
    if len > MAX_FIELD_LEN {
        return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, "frame length overflow"));
    }
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// A type with a canonical wire form.
pub trait Wire: Sized {
    /// Appends this value to `w`.
    fn encode(&self, w: &mut Writer);
    /// Parses one value from `r`.
    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError>;

    /// Encodes to a standalone buffer.
    fn to_wire(&self) -> Vec<u8> {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.finish_vec()
    }

    /// Decodes from a complete buffer (trailing bytes are an error).
    fn from_wire(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut r = Reader::new(bytes);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }

    /// Encodes into a shared immutable buffer (pure move, no extra copy).
    fn to_wire_bytes(&self) -> Bytes {
        let mut w = Writer::new();
        self.encode(&mut w);
        w.finish_bytes()
    }

    /// Decodes from a shared buffer; fields read via
    /// [`Reader::bytes_shared`] come back as zero-copy subviews of
    /// `bytes`' allocation.
    fn from_wire_bytes(bytes: &Bytes) -> Result<Self, CodecError> {
        let mut r = Reader::with_origin(bytes);
        let v = Self::decode(&mut r)?;
        r.expect_end()?;
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut w = Writer::new();
        w.u8(7).u16(300).u32(70_000).u64(u64::MAX).bool(true).bool(false);
        let buf = w.finish_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        r.expect_end().unwrap();
    }

    #[test]
    fn bytes_and_str_roundtrip() {
        let mut w = Writer::new();
        w.bytes(b"payload").str("Alice").bytes(b"");
        let buf = w.finish_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes().unwrap(), b"payload");
        assert_eq!(r.str().unwrap(), "Alice");
        assert_eq!(r.bytes().unwrap(), b"");
        r.expect_end().unwrap();
    }

    #[test]
    fn truncated_input_detected() {
        let mut w = Writer::new();
        w.bytes(b"hello");
        let buf = w.finish_vec();
        for cut in 0..buf.len() {
            let mut r = Reader::new(&buf[..cut]);
            assert!(r.bytes().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.u8(1);
        let mut buf = w.finish_vec();
        buf.push(0);
        let mut r = Reader::new(&buf);
        r.u8().unwrap();
        assert_eq!(r.expect_end(), Err(CodecError::TrailingBytes(1)));
    }

    #[test]
    fn non_canonical_bool_rejected() {
        let mut r = Reader::new(&[2]);
        assert!(matches!(r.bool(), Err(CodecError::BadDiscriminant("bool", 2))));
    }

    #[test]
    fn hostile_length_prefix_rejected() {
        // Length prefix claims 0xFFFF_FFFF bytes; must not allocate.
        let buf = [0xff, 0xff, 0xff, 0xff, 0x00];
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes(), Err(CodecError::LengthOverflow));
    }

    #[test]
    fn invalid_utf8_rejected() {
        let mut w = Writer::new();
        w.bytes(&[0xff, 0xfe]);
        let buf = w.finish_vec();
        let mut r = Reader::new(&buf);
        assert!(r.str().is_err());
    }

    #[test]
    fn fixed_and_array() {
        let mut w = Writer::new();
        w.fixed(&[1, 2, 3, 4]);
        let buf = w.finish_vec();
        assert_eq!(buf.len(), 4); // no prefix
        let mut r = Reader::new(&buf);
        assert_eq!(r.array::<4>().unwrap(), [1, 2, 3, 4]);
    }

    #[derive(Debug, PartialEq)]
    struct Sample {
        id: u64,
        name: String,
        blob: Vec<u8>,
    }

    impl Wire for Sample {
        fn encode(&self, w: &mut Writer) {
            w.u64(self.id).str(&self.name).bytes(&self.blob);
        }
        fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
            Ok(Sample { id: r.u64()?, name: r.str()?, blob: r.bytes()? })
        }
    }

    #[test]
    fn bytes_shared_is_zero_copy_with_origin() {
        let mut w = Writer::new();
        w.u8(5).bytes(b"abcdefgh").u16(9).bytes(b"tail");
        let wire = w.finish_bytes();
        let before = Bytes::deep_copies();
        let mut r = Reader::with_origin(&wire);
        assert_eq!(r.u8().unwrap(), 5);
        let field = r.bytes_shared().unwrap();
        assert_eq!(field, b"abcdefgh");
        assert!(field.same_allocation(&wire), "subview of the wire buffer");
        assert_eq!(r.u16().unwrap(), 9);
        let tail = r.bytes_shared().unwrap();
        assert_eq!(tail, b"tail");
        assert!(tail.same_allocation(&wire));
        r.expect_end().unwrap();
        assert_eq!(Bytes::deep_copies(), before, "no deep copies with an origin");
    }

    #[test]
    fn bytes_shared_without_origin_copies() {
        let mut w = Writer::new();
        w.bytes(b"xyz");
        let buf = w.finish_vec();
        let mut r = Reader::new(&buf);
        assert_eq!(r.bytes_shared().unwrap(), b"xyz");
    }

    #[test]
    fn bytes_shared_rejects_hostile_lengths_and_truncation() {
        let wire = Bytes::from(vec![0xff, 0xff, 0xff, 0xff, 0x00]);
        assert_eq!(Reader::with_origin(&wire).bytes_shared(), Err(CodecError::LengthOverflow));
        let mut w = Writer::new();
        w.bytes(b"hello");
        let full = w.finish_bytes();
        for cut in 0..full.len() {
            let trunc = full.slice(0..cut);
            assert!(Reader::with_origin(&trunc).bytes_shared().is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn stream_frames_roundtrip_and_reject_hostile_lengths() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"alpha").unwrap();
        write_frame(&mut buf, b"").unwrap();
        write_frame(&mut buf, b"omega").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"alpha");
        assert_eq!(read_frame(&mut r).unwrap(), b"");
        assert_eq!(read_frame(&mut r).unwrap(), b"omega");
        assert!(read_frame(&mut r).is_err(), "clean EOF surfaces as an error");
        // Hostile prefix: claims 4 GiB; must fail before allocating.
        let hostile = [0xffu8, 0xff, 0xff, 0xff, 0x00];
        assert!(read_frame(&mut &hostile[..]).is_err());
        // Truncated body.
        let mut trunc = Vec::new();
        write_frame(&mut trunc, b"hello").unwrap();
        trunc.pop();
        assert!(read_frame(&mut &trunc[..]).is_err());
    }

    #[test]
    fn wire_trait_roundtrip_and_canonicity() {
        let s = Sample { id: 9, name: "bob".into(), blob: vec![1, 2, 3] };
        let enc = s.to_wire();
        assert_eq!(Sample::from_wire(&enc).unwrap(), s);
        // Canonicity: re-encoding the decoded value is byte-identical.
        assert_eq!(Sample::from_wire(&enc).unwrap().to_wire(), enc);
        // Trailing garbage rejected.
        let mut bad = enc.clone();
        bad.push(0);
        assert!(Sample::from_wire(&bad).is_err());
    }
}
