//! Virtual time for the discrete-event simulator.
//!
//! All protocol logic takes time from a [`Clock`] so that timeout paths
//! (TPNR Abort/Resolve, paper §4.2–4.3) are exercised deterministically: the
//! simulator advances a [`SimClock`] instead of sleeping.

use std::sync::{Arc, Mutex};

/// A point in simulated time, in microseconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// Adds a duration.
    pub fn after(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Time elapsed since `earlier` (saturating).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Microsecond count.
    pub fn micros(self) -> u64 {
        self.0
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// From milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// From seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// From hours (shipping simulations span days).
    pub const fn from_hours(h: u64) -> Self {
        SimDuration(h * 3_600_000_000)
    }

    /// Microsecond count.
    pub fn micros(self) -> u64 {
        self.0
    }

    /// As floating-point seconds (for experiment reports).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Sum of two spans.
    pub fn plus(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(other.0))
    }

    /// Scales by an integer factor.
    pub fn times(self, k: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(k))
    }
}

/// Host wall-clock stopwatch for *measurement* code (benchmark and
/// experiment harnesses timing real CPU work).
///
/// Protocol logic must take time from a [`Clock`]; this type exists so host
/// timing is confined to `net::time`, the one module the NO-WALLCLOCK lint
/// exempts. It deliberately exposes only elapsed spans, never absolute time,
/// so it cannot leak into protocol timeliness decisions.
pub struct HostStopwatch(std::time::Instant);

impl HostStopwatch {
    /// Starts timing now.
    pub fn start() -> Self {
        HostStopwatch(std::time::Instant::now())
    }

    /// Seconds elapsed since [`HostStopwatch::start`].
    pub fn elapsed_secs_f64(&self) -> f64 {
        self.0.elapsed().as_secs_f64()
    }
}

/// Source of current time for protocol logic.
pub trait Clock {
    /// The current instant.
    fn now(&self) -> SimTime;
}

/// Shared, manually-advanced simulation clock.
#[derive(Clone, Default)]
pub struct SimClock {
    now: Arc<Mutex<SimTime>>,
}

impl SimClock {
    /// New clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `d`.
    pub fn advance(&self, d: SimDuration) {
        let mut now = self.now.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *now = now.after(d);
    }

    /// Jumps the clock to `t`; panics if `t` is in the past (discrete-event
    /// simulation time must be monotone).
    pub fn set(&self, t: SimTime) {
        let mut now = self.now.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        assert!(t >= *now, "simulation clock may not go backwards");
        *now = t;
    }
}

impl Clock for SimClock {
    fn now(&self) -> SimTime {
        *self.now.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO.after(SimDuration::from_millis(5));
        assert_eq!(t.micros(), 5_000);
        assert_eq!(t.since(SimTime::ZERO), SimDuration::from_millis(5));
        assert_eq!(SimTime::ZERO.since(t), SimDuration::ZERO); // saturates
        assert_eq!(
            SimDuration::from_secs(2).plus(SimDuration::from_millis(500)).micros(),
            2_500_000
        );
        assert_eq!(SimDuration::from_millis(10).times(3), SimDuration::from_millis(30));
        assert_eq!(SimDuration::from_hours(1).micros(), 3_600_000_000);
    }

    #[test]
    fn clock_advances_and_is_shared() {
        let c = SimClock::new();
        let c2 = c.clone();
        c.advance(SimDuration::from_secs(1));
        assert_eq!(c2.now().micros(), 1_000_000);
        c2.set(SimTime(5_000_000));
        assert_eq!(c.now().micros(), 5_000_000);
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn clock_rejects_time_travel() {
        let c = SimClock::new();
        c.set(SimTime(10));
        c.set(SimTime(5));
    }

    #[test]
    fn as_secs_f64() {
        assert!((SimDuration::from_millis(1500).as_secs_f64() - 1.5).abs() < 1e-9);
    }
}
