//! The runner ↔ network seam: one [`Transport`] contract, many wires.
//!
//! The protocol state machines (client, provider, TTP) never touch a
//! network type directly — they emit outgoing messages and the *runner*
//! moves bytes. Until this module existed the runner was welded to the
//! discrete-event simulator; [`Transport`] abstracts the seam so the same
//! protocol code, fault plans and invariant tests drive:
//!
//! * [`crate::sim::SimNet`] — the deterministic discrete-event simulator
//!   (virtual clock, seeded RNG, per-link loss/jitter/duplication);
//! * [`crate::tcp::ChannelNet`] — an in-process SPSC-channel wire with the
//!   same length-prefixed framing as TCP, zero-latency and deterministic
//!   (CI-friendly);
//! * [`crate::tcp::TcpNet`] — real loopback TCP sockets with reader
//!   threads and host-monotonic time.
//!
//! The trait deliberately mirrors how the scheduler already consumed
//! `SimNet`: time comes from the transport's clock capability
//! ([`Transport::now`] / [`Transport::advance_clock_to`] — a `SimClock`
//! for the simulator, a `HostStopwatch`-style monotonic reading for real
//! sockets), deliveries are *pulled* ([`Transport::poll_deliverable`]),
//! and wire-level happenings the actors cannot observe (drops,
//! duplications) surface as [`NetEvent`]s for the observability sink.
//!
//! Every backend upholds the conservation law
//! `delivered + dropped == sent + duplicated` over its [`NetStats`]
//! once quiescent: each accepted copy is eventually counted delivered or
//! counted dropped, never silently lost.

use crate::bytes::Bytes;
use crate::sim::{Envelope, Interceptor, NetEvent, NetStats, NodeId, TxnNetStats};
use crate::time::SimTime;

/// A wire the scheduler can drive: named nodes, tagged sends, pull-based
/// delivery, drained wire events, per-transaction accounting, and a clock.
///
/// Object-safe — the scheduler works through `&mut dyn Transport` so the
/// settle loop itself carries zero per-backend code.
pub trait Transport: Send {
    /// Current transport time. For the simulator this is the shared
    /// [`crate::time::SimClock`]; for real sockets it is host-monotonic
    /// microseconds since the transport started.
    fn now(&self) -> SimTime;

    /// Advances the clock to `t` without delivering anything (fires a
    /// protocol timer due before the next delivery). Simulated backends
    /// jump; real-time backends sleep the remainder. A `t` in the past is
    /// a no-op — transport time is monotone.
    fn advance_clock_to(&mut self, t: SimTime);

    /// Registers a named node and returns its id.
    fn register(&mut self, name: &str) -> NodeId;

    /// The display name of a node, if it is registered. The one-pass event
    /// drain in the scheduler uses this to translate ids without
    /// re-borrowing the backend.
    fn node_name(&self, node: NodeId) -> Option<&str>;

    /// Sends a payload attributed to a transaction (`None` = untagged).
    fn send_tagged(&mut self, src: NodeId, dst: NodeId, payload: Bytes, txn: Option<u64>);

    /// Sends an untagged payload.
    fn send(&mut self, src: NodeId, dst: NodeId, payload: Bytes) {
        self.send_tagged(src, dst, payload, None);
    }

    /// Delivers every message due at or before `now`, in wire order. May
    /// return an empty vector even when [`Transport::next_deliverable_at`]
    /// reported a due time — the due copies may all have been dropped
    /// (down destination, link loss); the drop is then counted and a
    /// [`NetEvent`] recorded.
    fn poll_deliverable(&mut self, now: SimTime) -> Vec<Envelope>;

    /// When the next delivery is due, if one is queued. Real backends
    /// report arrivals already buffered; they cannot predict the future,
    /// so `None` here does not mean quiescent — see
    /// [`Transport::wait_for_activity`].
    fn next_deliverable_at(&mut self) -> Option<SimTime>;

    /// True while accepted copies are still somewhere between send and
    /// delivered/dropped accounting.
    fn in_flight(&self) -> bool;

    /// Drains pending wire events (drops, duplications) for the
    /// observability sink.
    fn take_events(&mut self) -> Vec<NetEvent>;

    /// Aggregate traffic counters.
    fn stats(&self) -> NetStats;

    /// Traffic counters for one tagged transaction.
    fn txn_stats(&self, txn: u64) -> TxnNetStats;

    /// Transactions with tagged traffic on record, ascending.
    fn tagged_txns(&self) -> Vec<u64>;

    /// Drops one transaction's counters, returning the final values.
    fn retire_txn(&mut self, txn: u64) -> TxnNetStats;

    /// Installs (or replaces) the wire adversary.
    fn set_interceptor(&mut self, i: Box<dyn Interceptor>);

    /// Removes the wire adversary.
    fn clear_interceptor(&mut self);

    /// Marks a node down (or back up). While a node is down the transport
    /// drops copies addressed to it at delivery time, counting each drop —
    /// fault-plan outage windows become ordinary transport-level link
    /// drops, visible to the conservation law like any other loss.
    fn set_node_down(&mut self, node: NodeId, down: bool);

    /// Blocks until new work *may* be available, or until the transport is
    /// sure none is coming. Returns `true` if the caller should re-poll
    /// (something arrived or may have), `false` if it is safe to proceed
    /// (fire the timer at `until`, or — with `until == None` — conclude
    /// the wire is quiescent).
    ///
    /// Simulated backends are omniscient about their own queue and always
    /// return `false` immediately. Real backends block here: with
    /// `Some(t)` until host time reaches `t` or a frame lands, with `None`
    /// until in-flight frames drain or a bounded grace period expires.
    fn wait_for_activity(&mut self, until: Option<SimTime>) -> bool {
        let _ = until;
        false
    }

    /// Wire events discarded because nobody drained them in time.
    fn events_lost(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{LinkConfig, SimNet};
    use crate::time::SimDuration;

    /// Drives a backend through `&mut dyn Transport` only.
    fn ping_pong(net: &mut dyn Transport) -> (NetStats, Vec<Envelope>) {
        let a = net.register("alice");
        let b = net.register("bob");
        net.send_tagged(a, b, Bytes::from(b"ping".to_vec()), Some(1));
        let mut got = Vec::new();
        while net.in_flight() {
            let Some(at) = net.next_deliverable_at() else {
                if !net.wait_for_activity(None) {
                    break;
                }
                continue;
            };
            let now = net.now().max(at);
            net.advance_clock_to(now);
            got.extend(net.poll_deliverable(now));
        }
        (net.stats(), got)
    }

    #[test]
    fn simnet_is_drivable_through_dyn_transport() {
        let mut net = SimNet::new(1);
        let (stats, got) = ping_pong(&mut net);
        assert_eq!(stats.sent, 1);
        assert_eq!(stats.delivered, 1);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].payload, b"ping");
        assert_eq!(got[0].delivered_at, SimTime::ZERO.after(SimDuration::from_millis(25)));
        assert_eq!(net.node_name(got[0].dst), Some("bob"));
        assert_eq!(net.node_name(NodeId(99)), None);
        assert_eq!(Transport::txn_stats(&net, 1).delivered, 1);
    }

    #[test]
    fn down_node_drops_at_delivery_and_conserves() {
        let mut net = SimNet::new(2);
        let a = net.register("a");
        let b = net.register("b");
        net.send(a, b, Bytes::from(b"one".to_vec()));
        Transport::set_node_down(&mut net, b, true);
        net.send(a, b, Bytes::from(b"two".to_vec()));
        let t: &mut dyn Transport = &mut net;
        let mut delivered = Vec::new();
        while let Some(at) = t.next_deliverable_at() {
            t.advance_clock_to(at);
            delivered.extend(t.poll_deliverable(at));
        }
        // Both copies were sent before the outage took effect at delivery
        // time, so both are dropped: the outage window is a link drop.
        assert!(delivered.is_empty());
        let s = t.stats();
        assert_eq!((s.sent, s.delivered, s.dropped), (2, 0, 2));
        assert_eq!(s.delivered + s.dropped, s.sent + s.duplicated);
        let evs = t.take_events();
        assert_eq!(evs.len(), 2);
        // Back up: traffic flows again.
        t.set_node_down(b, false);
        t.send(a, b, Bytes::from(b"three".to_vec()));
        let at = t.next_deliverable_at().unwrap();
        t.advance_clock_to(at);
        assert_eq!(t.poll_deliverable(at).len(), 1);
    }

    #[test]
    fn lossy_link_conservation_through_trait() {
        let mut net = SimNet::new(3);
        let a = net.register("a");
        let b = net.register("b");
        net.set_link(
            a,
            b,
            LinkConfig {
                latency: SimDuration::from_millis(1),
                jitter: SimDuration::ZERO,
                drop_prob: 0.4,
                dup_prob: 0.4,
            },
        );
        for i in 0..200u8 {
            Transport::send_tagged(&mut net, a, b, Bytes::from(vec![i]), Some(7));
        }
        let t: &mut dyn Transport = &mut net;
        while let Some(at) = t.next_deliverable_at() {
            t.advance_clock_to(at);
            t.poll_deliverable(at);
        }
        assert!(!t.in_flight());
        let s = t.stats();
        assert_eq!(s.delivered + s.dropped, s.sent + s.duplicated);
        let ts = t.txn_stats(7);
        assert_eq!(ts.delivered + ts.dropped, ts.sent + ts.duplicated);
        assert_eq!(t.tagged_txns(), vec![7]);
        assert_eq!(t.retire_txn(7), ts);
    }
}
