//! Deterministic discrete-event network simulator.
//!
//! Models the "Internet" of the paper's Figure 1: named nodes exchange
//! opaque payloads over links with configurable latency, jitter, loss,
//! duplication and reordering. An optional [`Interceptor`] sits on the wire
//! and can drop, modify, delay, or inject traffic — that is the §5
//! adversary (MITM, replay, reflection, …).
//!
//! The simulator is single-threaded and fully deterministic: all randomness
//! comes from a seeded [`ChaChaRng`] and all time from a shared
//! [`SimClock`], so any attack trace replays byte-for-byte.

use crate::bytes::Bytes;
use crate::time::{SimClock, SimDuration, SimTime};
use crate::transport::Transport;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use tpnr_crypto::ChaChaRng;

/// Identifies a registered node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A message sitting in a node's inbox.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Opaque payload. A shared immutable view: queueing, duplication and
    /// inbox delivery all clone the handle (refcount bump), never the
    /// bytes — the allocation the sender handed in is the one every
    /// receiver reads.
    pub payload: Bytes,
    /// When the message reached the inbox.
    pub delivered_at: SimTime,
    /// Transaction the sender attributed this message to (simulator
    /// metadata, not on the wire). Duplicates keep the tag; payloads the
    /// adversary modifies keep the original sender's tag; adversary
    /// injections are untagged.
    pub txn: Option<u64>,
}

/// Per-link behaviour.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// Base one-way latency.
    pub latency: SimDuration,
    /// Uniform jitter added on top of `latency` (0..=jitter).
    pub jitter: SimDuration,
    /// Probability a message is silently dropped.
    pub drop_prob: f64,
    /// Probability a delivered message is duplicated.
    pub dup_prob: f64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency: SimDuration::from_millis(25),
            jitter: SimDuration::ZERO,
            drop_prob: 0.0,
            dup_prob: 0.0,
        }
    }
}

impl LinkConfig {
    /// An ideal loss-free, jitter-free link with the given one-way latency.
    pub fn ideal(latency: SimDuration) -> Self {
        LinkConfig { latency, ..Default::default() }
    }

    /// A lossy link.
    pub fn lossy(latency: SimDuration, drop_prob: f64) -> Self {
        LinkConfig { latency, drop_prob, ..Default::default() }
    }
}

/// What the network did to a message copy. Drops and duplications happen
/// inside the simulator where no actor can observe them, so the simulator
/// records them as events for the runner to drain into its observability
/// sink (see [`SimNet::take_events`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetEventKind {
    /// A copy was lost (link loss or adversary drop).
    Dropped,
    /// The link created an extra copy of a message.
    Duplicated,
}

/// One recorded network happening, ready to be drained by the runner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetEvent {
    /// When it happened (send time for drops/duplications).
    pub at: SimTime,
    /// Sending node of the affected message.
    pub src: NodeId,
    /// Intended receiver of the affected message.
    pub dst: NodeId,
    /// Transaction tag of the affected message, if any.
    pub txn: Option<u64>,
    /// What happened.
    pub kind: NetEventKind,
}

/// What the wire adversary decides to do with an in-flight message.
#[derive(Debug, Clone)]
pub enum Action {
    /// Deliver unchanged.
    Deliver,
    /// Silently drop.
    Drop,
    /// Deliver a modified payload instead.
    Modify(Vec<u8>),
    /// Deliver unchanged and also inject extra messages (src, dst, payload)
    /// scheduled with the same link rules.
    InjectAfter(Vec<(NodeId, NodeId, Vec<u8>)>),
    /// Hold the message back by the given extra delay.
    Delay(SimDuration),
}

/// Wire-level adversary hook. Sees every message at send time.
///
/// `Send` so a whole `SimNet` (and the worlds built on it) can be moved
/// across the scoped-thread boundary `tpnr-par` uses to drive sharded
/// lanes concurrently; interceptors capturing shared tape use
/// `Arc<Mutex<…>>` rather than `Rc<RefCell<…>>`.
pub trait Interceptor: Send {
    /// Chooses the fate of an in-flight message.
    fn intercept(&mut self, src: NodeId, dst: NodeId, payload: &[u8], now: SimTime) -> Action;
}

/// Blanket impl so plain closures can serve as interceptors.
impl<F> Interceptor for F
where
    F: FnMut(NodeId, NodeId, &[u8], SimTime) -> Action + Send,
{
    fn intercept(&mut self, src: NodeId, dst: NodeId, payload: &[u8], now: SimTime) -> Action {
        self(src, dst, payload, now)
    }
}

#[derive(Debug)]
struct ScheduledDelivery {
    at: SimTime,
    /// Tie-breaker preserving send order for equal timestamps.
    seq: u64,
    env: Envelope,
}

impl PartialEq for ScheduledDelivery {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for ScheduledDelivery {}
impl PartialOrd for ScheduledDelivery {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for ScheduledDelivery {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The simulated network.
pub struct SimNet {
    clock: SimClock,
    rng: ChaChaRng,
    nodes: Vec<String>,
    /// Nodes currently down (fault outage windows): copies addressed to a
    /// down node are dropped at delivery time and counted.
    down: Vec<bool>,
    inboxes: Vec<VecDeque<Envelope>>,
    links: HashMap<(NodeId, NodeId), LinkConfig>,
    default_link: LinkConfig,
    queue: BinaryHeap<Reverse<ScheduledDelivery>>,
    seq: u64,
    interceptor: Option<Box<dyn Interceptor>>,
    /// Counters for experiment reports.
    pub stats: NetStats,
    txn_stats: HashMap<u64, TxnNetStats>,
    /// Pending drop/duplication events awaiting [`SimNet::take_events`].
    events: Vec<NetEvent>,
    /// Events discarded because the pending buffer hit its cap (a runner
    /// that never drains must not leak memory; counters above stay exact).
    pub events_lost: u64,
}

/// Aggregate traffic counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages handed to `send`.
    pub sent: u64,
    /// Messages that reached an inbox.
    pub delivered: u64,
    /// Messages dropped by loss or the adversary.
    pub dropped: u64,
    /// Duplicates created by the link.
    pub duplicated: u64,
    /// Messages the adversary modified.
    pub modified: u64,
    /// Messages the adversary injected.
    pub injected: u64,
    /// Total payload bytes handed to `send`.
    pub bytes_sent: u64,
}

/// Traffic counters for one transaction (see [`SimNet::send_tagged`]).
///
/// These are exact per-transaction attributions: every tagged send is
/// counted against its own transaction, so interleaved sessions never bleed
/// into each other the way before/after deltas of the global [`NetStats`]
/// do. Untagged traffic (adversary injections, raw `send`) appears only in
/// the global counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TxnNetStats {
    /// Messages handed to `send_tagged` for this transaction.
    pub sent: u64,
    /// Payload bytes handed to `send_tagged` for this transaction.
    pub bytes_sent: u64,
    /// Deliveries that reached an inbox (duplicates count per copy).
    pub delivered: u64,
    /// Copies dropped by loss or the adversary.
    pub dropped: u64,
    /// Extra copies the link created for this transaction's messages.
    pub duplicated: u64,
    /// Time of the most recent delivery for this transaction.
    pub last_delivered_at: SimTime,
}

impl SimNet {
    /// Creates an empty network with a deterministic RNG seed.
    pub fn new(seed: u64) -> Self {
        SimNet {
            clock: SimClock::new(),
            rng: ChaChaRng::seed_from_u64(seed),
            nodes: Vec::new(),
            down: Vec::new(),
            inboxes: Vec::new(),
            links: HashMap::new(),
            default_link: LinkConfig::default(),
            queue: BinaryHeap::new(),
            seq: 0,
            interceptor: None,
            stats: NetStats::default(),
            txn_stats: HashMap::new(),
            events: Vec::new(),
            events_lost: 0,
        }
    }

    /// Cap on pending undrained events; beyond this, events are counted in
    /// [`SimNet::events_lost`] and discarded.
    const EVENT_BUFFER_CAP: usize = 1 << 16;

    /// The shared simulation clock (hand it to protocol actors).
    pub fn clock(&self) -> SimClock {
        self.clock.clone()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        use crate::time::Clock as _;
        self.clock.now()
    }

    /// Registers a named node and returns its id.
    pub fn register(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(name.to_string());
        self.down.push(false);
        self.inboxes.push(VecDeque::new());
        id
    }

    /// Marks a node down (or back up). Copies addressed to a down node are
    /// dropped *at delivery time* — a message sent during an outage still
    /// arrives if the node restarts before the link latency elapses, just
    /// as on a real wire.
    pub fn set_node_down(&mut self, node: NodeId, down: bool) {
        self.down[node.0 as usize] = down;
    }

    /// The display name of a node.
    pub fn name(&self, node: NodeId) -> &str {
        &self.nodes[node.0 as usize]
    }

    /// Sets the link configuration for the directed pair `(src, dst)`.
    pub fn set_link(&mut self, src: NodeId, dst: NodeId, cfg: LinkConfig) {
        self.links.insert((src, dst), cfg);
    }

    /// Sets the link configuration for both directions.
    pub fn set_link_bidi(&mut self, a: NodeId, b: NodeId, cfg: LinkConfig) {
        self.set_link(a, b, cfg);
        self.set_link(b, a, cfg);
    }

    /// Sets the fallback link used for pairs without an explicit config.
    pub fn set_default_link(&mut self, cfg: LinkConfig) {
        self.default_link = cfg;
    }

    /// Installs (or replaces) the wire adversary.
    pub fn set_interceptor(&mut self, i: Box<dyn Interceptor>) {
        self.interceptor = Some(i);
    }

    /// Removes the wire adversary.
    pub fn clear_interceptor(&mut self) {
        self.interceptor = None;
    }

    fn link_for(&self, src: NodeId, dst: NodeId) -> LinkConfig {
        self.links.get(&(src, dst)).copied().unwrap_or(self.default_link)
    }

    /// Sends a payload; delivery is scheduled according to the link and the
    /// adversary's decision. Accepts anything convertible to [`Bytes`];
    /// passing a `Vec<u8>` moves the buffer without copying.
    pub fn send(&mut self, src: NodeId, dst: NodeId, payload: impl Into<Bytes>) {
        self.send_tagged(src, dst, payload, None);
    }

    /// Like [`SimNet::send`], but attributes the message to a transaction so
    /// per-session traffic can be reported exactly (see
    /// [`SimNet::txn_stats`]).
    pub fn send_tagged(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload: impl Into<Bytes>,
        txn: Option<u64>,
    ) {
        let payload = payload.into();
        assert!((dst.0 as usize) < self.nodes.len(), "unknown destination");
        self.stats.sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        if let Some(t) = txn {
            let ts = self.txn_stats.entry(t).or_default();
            ts.sent += 1;
            ts.bytes_sent += payload.len() as u64;
        }
        let now = self.now();

        let action = match self.interceptor.as_mut() {
            Some(i) => i.intercept(src, dst, &payload, now),
            None => Action::Deliver,
        };
        let mut extra_delay = SimDuration::ZERO;
        let mut payload = payload;
        let mut injections: Vec<(NodeId, NodeId, Vec<u8>)> = Vec::new();
        match action {
            Action::Deliver => {}
            Action::Drop => {
                self.drop_copy(src, dst, txn);
                return;
            }
            Action::Modify(p) => {
                // The adversary supplies a fresh buffer (`Action` carries
                // `Vec<u8>` by design): shared payload bytes are never
                // mutated in place, so other holders of the original
                // allocation are unaffected.
                self.stats.modified += 1;
                payload = Bytes::from(p);
            }
            Action::InjectAfter(msgs) => {
                self.stats.injected += msgs.len() as u64;
                injections = msgs;
            }
            Action::Delay(d) => extra_delay = d,
        }

        self.schedule(src, dst, payload, extra_delay, txn);
        for (isrc, idst, ipayload) in injections {
            self.schedule(isrc, idst, Bytes::from(ipayload), SimDuration::ZERO, None);
        }
    }

    /// Accounts one lost copy (counters + observable event).
    fn drop_copy(&mut self, src: NodeId, dst: NodeId, txn: Option<u64>) {
        self.stats.dropped += 1;
        if let Some(t) = txn {
            self.txn_stats.entry(t).or_default().dropped += 1;
        }
        self.push_event(NetEventKind::Dropped, src, dst, txn);
    }

    fn push_event(&mut self, kind: NetEventKind, src: NodeId, dst: NodeId, txn: Option<u64>) {
        if self.events.len() >= Self::EVENT_BUFFER_CAP {
            self.events_lost += 1;
            return;
        }
        let at = self.now();
        self.events.push(NetEvent { at, src, dst, txn, kind });
    }

    /// Drains the pending drop/duplication events. The scheduler calls this
    /// every settle step and feeds the result to the shared observability
    /// sink; counters in [`NetStats`]/[`TxnNetStats`] are independent of
    /// whether anyone drains.
    pub fn take_events(&mut self) -> Vec<NetEvent> {
        std::mem::take(&mut self.events)
    }

    fn roll_jitter(&mut self, cfg: &LinkConfig) -> SimDuration {
        if cfg.jitter.micros() > 0 {
            SimDuration::from_micros(self.rng.gen_below(cfg.jitter.micros() + 1))
        } else {
            SimDuration::ZERO
        }
    }

    fn schedule(
        &mut self,
        src: NodeId,
        dst: NodeId,
        payload: Bytes,
        extra: SimDuration,
        txn: Option<u64>,
    ) {
        let cfg = self.link_for(src, dst);
        if cfg.drop_prob > 0.0 && self.rng.gen_bool(cfg.drop_prob) {
            self.drop_copy(src, dst, txn);
            return;
        }
        let jitter = self.roll_jitter(&cfg);
        let at = self.now().after(cfg.latency).after(jitter).after(extra);
        let env = Envelope { src, dst, payload, delivered_at: at, txn };
        self.seq += 1;
        // Cloning an envelope clones the payload *handle* only — the queued
        // copy, any duplicate, and the inbox all share one allocation.
        self.queue.push(Reverse(ScheduledDelivery { at, seq: self.seq, env: env.clone() }));
        if cfg.dup_prob > 0.0 && self.rng.gen_bool(cfg.dup_prob) {
            // The copy traverses the link again behind the original, so it
            // re-rolls loss and jitter independently: a duplicating link
            // must never be *more* reliable than a loss-free one.
            self.stats.duplicated += 1;
            if let Some(t) = txn {
                self.txn_stats.entry(t).or_default().duplicated += 1;
            }
            self.push_event(NetEventKind::Duplicated, src, dst, txn);
            if cfg.drop_prob > 0.0 && self.rng.gen_bool(cfg.drop_prob) {
                self.drop_copy(src, dst, txn);
            } else {
                let jitter2 = self.roll_jitter(&cfg);
                let at2 = at.after(cfg.latency).after(jitter2);
                self.seq += 1;
                self.queue.push(Reverse(ScheduledDelivery { at: at2, seq: self.seq, env }));
            }
        }
    }

    /// Delivers the next scheduled message (advancing the clock to its
    /// delivery time). Returns the delivered envelope, or `None` if the
    /// network is quiet *or* the copy was dropped at delivery (down
    /// destination) — check [`SimNet::in_flight`] to distinguish.
    pub fn step(&mut self) -> Option<Envelope> {
        let Reverse(mut d) = self.queue.pop()?;
        self.clock.set(d.at);
        if self.down[d.env.dst.0 as usize] {
            self.drop_copy(d.env.src, d.env.dst, d.env.txn);
            return None;
        }
        d.env.delivered_at = d.at;
        self.inboxes[d.env.dst.0 as usize].push_back(d.env.clone());
        self.stats.delivered += 1;
        if let Some(t) = d.env.txn {
            let ts = self.txn_stats.entry(t).or_default();
            ts.delivered += 1;
            ts.last_delivered_at = d.at;
        }
        Some(d.env)
    }

    /// Runs until no messages remain in flight. Returns how many were
    /// delivered.
    pub fn run_until_quiet(&mut self) -> usize {
        let mut n = 0;
        while self.in_flight() {
            if self.step().is_some() {
                n += 1;
            }
        }
        n
    }

    /// Delivers everything scheduled up to and including `t`, then advances
    /// the clock to `t`.
    pub fn advance_to(&mut self, t: SimTime) {
        while let Some(Reverse(d)) = self.queue.peek() {
            if d.at > t {
                break;
            }
            self.step();
        }
        if self.now() < t {
            self.clock.set(t);
        }
    }

    /// Advances by a duration (delivering everything due in the window).
    pub fn advance(&mut self, d: SimDuration) {
        let t = self.now().after(d);
        self.advance_to(t);
    }

    /// Pops the oldest message from a node's inbox.
    pub fn recv(&mut self, node: NodeId) -> Option<Envelope> {
        self.inboxes[node.0 as usize].pop_front()
    }

    /// How many messages are waiting in a node's inbox.
    pub fn inbox_len(&self, node: NodeId) -> usize {
        self.inboxes[node.0 as usize].len()
    }

    /// True if messages are still in flight.
    pub fn in_flight(&self) -> bool {
        !self.queue.is_empty()
    }

    /// Delivery time of the next scheduled message, if any (lets callers
    /// interleave protocol timers with in-flight traffic).
    pub fn next_event_at(&self) -> Option<SimTime> {
        self.queue.peek().map(|Reverse(d)| d.at)
    }

    /// Traffic counters for one tagged transaction (zeroes if it never sent
    /// anything).
    pub fn txn_stats(&self, txn: u64) -> TxnNetStats {
        self.txn_stats.get(&txn).copied().unwrap_or_default()
    }

    /// Transactions that have tagged traffic on record.
    pub fn tagged_txns(&self) -> Vec<u64> {
        let mut ids: Vec<u64> = self.txn_stats.keys().copied().collect();
        ids.sort_unstable();
        ids
    }

    /// Drops one transaction's traffic counters, returning the final
    /// values for the caller's archive index. Global [`NetStats`] — and
    /// with them the conservation law — are unaffected. Late tagged
    /// traffic for the transaction would simply open a fresh entry.
    pub fn retire_txn(&mut self, txn: u64) -> TxnNetStats {
        self.txn_stats.remove(&txn).unwrap_or_default()
    }

    /// Advances the clock to `t` *without* delivering anything, for firing
    /// a protocol timer due strictly before the next delivery. Panics if a
    /// delivery is scheduled before `t` (stepping over it would reorder the
    /// simulation); a `t` in the past is a no-op (the clock is monotone).
    pub fn advance_clock_to(&mut self, t: SimTime) {
        if t <= self.now() {
            return;
        }
        if let Some(at) = self.next_event_at() {
            assert!(at >= t, "advance_clock_to would skip a scheduled delivery");
        }
        self.clock.set(t);
    }
}

/// The simulator behind the transport seam. Delegates to the inherent
/// methods, so driving a `SimNet` through `&mut dyn Transport` is
/// behaviorally identical to driving it directly (the backend-parity
/// proptest in `tpnr-core` pins this down).
impl Transport for SimNet {
    fn now(&self) -> SimTime {
        SimNet::now(self)
    }

    fn advance_clock_to(&mut self, t: SimTime) {
        SimNet::advance_clock_to(self, t);
    }

    fn register(&mut self, name: &str) -> NodeId {
        SimNet::register(self, name)
    }

    fn node_name(&self, node: NodeId) -> Option<&str> {
        self.nodes.get(node.0 as usize).map(String::as_str)
    }

    fn send_tagged(&mut self, src: NodeId, dst: NodeId, payload: Bytes, txn: Option<u64>) {
        SimNet::send_tagged(self, src, dst, payload, txn);
    }

    fn poll_deliverable(&mut self, now: SimTime) -> Vec<Envelope> {
        let mut out = Vec::new();
        while self.next_event_at().is_some_and(|at| at <= now) {
            if let Some(env) = self.step() {
                out.push(env);
            }
        }
        out
    }

    fn next_deliverable_at(&mut self) -> Option<SimTime> {
        self.next_event_at()
    }

    fn in_flight(&self) -> bool {
        SimNet::in_flight(self)
    }

    fn take_events(&mut self) -> Vec<NetEvent> {
        SimNet::take_events(self)
    }

    fn stats(&self) -> NetStats {
        self.stats
    }

    fn txn_stats(&self, txn: u64) -> TxnNetStats {
        SimNet::txn_stats(self, txn)
    }

    fn tagged_txns(&self) -> Vec<u64> {
        SimNet::tagged_txns(self)
    }

    fn retire_txn(&mut self, txn: u64) -> TxnNetStats {
        SimNet::retire_txn(self, txn)
    }

    fn set_interceptor(&mut self, i: Box<dyn Interceptor>) {
        SimNet::set_interceptor(self, i);
    }

    fn clear_interceptor(&mut self) {
        SimNet::clear_interceptor(self);
    }

    fn set_node_down(&mut self, node: NodeId, down: bool) {
        SimNet::set_node_down(self, node, down);
    }

    fn events_lost(&self) -> u64 {
        self.events_lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_nodes(seed: u64) -> (SimNet, NodeId, NodeId) {
        let mut net = SimNet::new(seed);
        let a = net.register("alice");
        let b = net.register("bob");
        (net, a, b)
    }

    #[test]
    fn basic_delivery_with_latency() {
        let (mut net, a, b) = two_nodes(1);
        net.set_link(a, b, LinkConfig::ideal(SimDuration::from_millis(50)));
        net.send(a, b, b"hello".to_vec());
        assert!(net.recv(b).is_none(), "nothing before stepping");
        let env = net.step().unwrap();
        assert_eq!(env.payload, b"hello");
        assert_eq!(net.now().micros(), 50_000);
        let got = net.recv(b).unwrap();
        assert_eq!(got.src, a);
        assert_eq!(got.delivered_at.micros(), 50_000);
    }

    #[test]
    fn fifo_order_on_equal_latency() {
        let (mut net, a, b) = two_nodes(2);
        for i in 0..10u8 {
            net.send(a, b, vec![i]);
        }
        net.run_until_quiet();
        for i in 0..10u8 {
            assert_eq!(net.recv(b).unwrap().payload, vec![i]);
        }
    }

    #[test]
    fn drops_are_deterministic_per_seed() {
        let run = |seed| {
            let (mut net, a, b) = two_nodes(seed);
            net.set_link(a, b, LinkConfig::lossy(SimDuration::from_millis(1), 0.5));
            for i in 0..100u8 {
                net.send(a, b, vec![i]);
            }
            net.run_until_quiet();
            let mut got = Vec::new();
            while let Some(e) = net.recv(b) {
                got.push(e.payload[0]);
            }
            got
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8));
        let got = run(7);
        assert!(got.len() > 20 && got.len() < 80, "loss rate wildly off: {}", got.len());
    }

    #[test]
    fn duplication_creates_copies() {
        let (mut net, a, b) = two_nodes(3);
        net.set_link(
            a,
            b,
            LinkConfig { dup_prob: 1.0, ..LinkConfig::ideal(SimDuration::from_millis(1)) },
        );
        net.send(a, b, b"once".to_vec());
        net.run_until_quiet();
        assert_eq!(net.inbox_len(b), 2);
        assert_eq!(net.stats.duplicated, 1);
    }

    #[test]
    fn jitter_varies_latency_within_bounds() {
        let (mut net, a, b) = two_nodes(4);
        net.set_link(
            a,
            b,
            LinkConfig {
                latency: SimDuration::from_millis(10),
                jitter: SimDuration::from_millis(5),
                ..Default::default()
            },
        );
        let mut times = Vec::new();
        for _ in 0..50 {
            let mut n2 = SimNet::new(net.rng.next_u64());
            let a2 = n2.register("a");
            let b2 = n2.register("b");
            n2.set_link(
                a2,
                b2,
                LinkConfig {
                    latency: SimDuration::from_millis(10),
                    jitter: SimDuration::from_millis(5),
                    ..Default::default()
                },
            );
            n2.send(a2, b2, vec![0]);
            let env = n2.step().unwrap();
            times.push(env.delivered_at.micros());
        }
        assert!(times.iter().all(|&t| (10_000..=15_000).contains(&t)));
        assert!(times.iter().any(|&t| t != times[0]), "jitter should vary");
        let _ = (a, b);
    }

    #[test]
    fn interceptor_can_drop_and_modify() {
        let (mut net, a, b) = two_nodes(5);
        net.set_interceptor(Box::new(|_s, _d, payload: &[u8], _t| {
            if payload == b"secret" {
                Action::Modify(b"tampered".to_vec())
            } else if payload == b"kill" {
                Action::Drop
            } else {
                Action::Deliver
            }
        }));
        net.send(a, b, b"secret".to_vec());
        net.send(a, b, b"kill".to_vec());
        net.send(a, b, b"ok".to_vec());
        net.run_until_quiet();
        assert_eq!(net.recv(b).unwrap().payload, b"tampered");
        assert_eq!(net.recv(b).unwrap().payload, b"ok");
        assert!(net.recv(b).is_none());
        assert_eq!(net.stats.modified, 1);
        assert_eq!(net.stats.dropped, 1);
    }

    #[test]
    fn interceptor_can_inject_replays() {
        let (mut net, a, b) = two_nodes(6);
        net.set_interceptor(Box::new(|s, d, payload: &[u8], _t| {
            Action::InjectAfter(vec![(s, d, payload.to_vec())]) // replay every message
        }));
        net.send(a, b, b"msg".to_vec());
        net.run_until_quiet();
        assert_eq!(net.inbox_len(b), 2, "original + replay");
        assert_eq!(net.stats.injected, 1);
    }

    #[test]
    fn advance_only_delivers_due_messages() {
        let (mut net, a, b) = two_nodes(7);
        net.set_link(a, b, LinkConfig::ideal(SimDuration::from_millis(100)));
        net.send(a, b, b"x".to_vec());
        net.advance(SimDuration::from_millis(50));
        assert_eq!(net.inbox_len(b), 0);
        assert_eq!(net.now().micros(), 50_000);
        net.advance(SimDuration::from_millis(60));
        assert_eq!(net.inbox_len(b), 1);
    }

    #[test]
    fn delay_action_postpones() {
        let (mut net, a, b) = two_nodes(8);
        net.set_link(a, b, LinkConfig::ideal(SimDuration::from_millis(10)));
        net.set_interceptor(Box::new(|_s, _d, _p: &[u8], _t| {
            Action::Delay(SimDuration::from_millis(90))
        }));
        net.send(a, b, b"slow".to_vec());
        let env = net.step().unwrap();
        assert_eq!(env.delivered_at.micros(), 100_000);
    }

    #[test]
    fn stats_track_traffic() {
        let (mut net, a, b) = two_nodes(9);
        net.send(a, b, vec![0; 100]);
        net.send(b, a, vec![0; 50]);
        net.run_until_quiet();
        assert_eq!(net.stats.sent, 2);
        assert_eq!(net.stats.delivered, 2);
        assert_eq!(net.stats.bytes_sent, 150);
    }

    #[test]
    #[should_panic(expected = "unknown destination")]
    fn unknown_destination_panics() {
        let mut net = SimNet::new(0);
        let a = net.register("a");
        net.send(a, NodeId(99), Bytes::new());
    }

    #[test]
    fn tagged_sends_attribute_per_transaction() {
        let (mut net, a, b) = two_nodes(10);
        net.send_tagged(a, b, vec![0; 100], Some(1));
        net.send_tagged(b, a, vec![0; 40], Some(1));
        net.send_tagged(a, b, vec![0; 7], Some(2));
        net.send(a, b, vec![0; 3]); // untagged
        net.run_until_quiet();
        let t1 = net.txn_stats(1);
        assert_eq!((t1.sent, t1.bytes_sent, t1.delivered, t1.dropped), (2, 140, 2, 0));
        let t2 = net.txn_stats(2);
        assert_eq!((t2.sent, t2.bytes_sent, t2.delivered), (1, 7, 1));
        assert_eq!(net.txn_stats(99), TxnNetStats::default());
        assert_eq!(net.tagged_txns(), vec![1, 2]);
        // Untagged traffic appears only in the global counters.
        assert_eq!(net.stats.sent, 4);
        assert_eq!(t1.sent + t2.sent, 3);
    }

    #[test]
    fn tagged_drops_and_duplicates_are_attributed() {
        let (mut net, a, b) = two_nodes(11);
        net.set_link(a, b, LinkConfig { drop_prob: 1.0, ..Default::default() });
        net.set_link(
            b,
            a,
            LinkConfig { dup_prob: 1.0, ..LinkConfig::ideal(SimDuration::from_millis(1)) },
        );
        net.send_tagged(a, b, vec![1], Some(7));
        net.send_tagged(b, a, vec![2], Some(7));
        net.run_until_quiet();
        let t = net.txn_stats(7);
        assert_eq!(t.sent, 2);
        assert_eq!(t.dropped, 1);
        assert_eq!(t.duplicated, 1);
        assert_eq!(t.delivered, 2, "the duplicate copy keeps the tag");
        assert_eq!(t.last_delivered_at.micros(), 2_000);
    }

    #[test]
    fn duplicate_copies_reroll_link_loss() {
        // A duplicating lossy link must be able to lose the copy too; the
        // old model scheduled copies unconditionally, making duplicating
        // links *more* reliable than loss-free ones.
        let (mut net, a, b) = two_nodes(14);
        net.set_link(
            a,
            b,
            LinkConfig {
                latency: SimDuration::from_millis(1),
                jitter: SimDuration::ZERO,
                drop_prob: 0.5,
                dup_prob: 1.0,
            },
        );
        for i in 0..200u8 {
            net.send_tagged(a, b, vec![i], Some(1));
        }
        net.run_until_quiet();
        let s = net.stats;
        // Conservation: every copy (original or duplicate) ends up
        // delivered or dropped, globally and per transaction.
        assert_eq!(s.delivered + s.dropped, s.sent + s.duplicated);
        let t = net.txn_stats(1);
        assert_eq!(t.delivered + t.dropped, t.sent + t.duplicated);
        assert_eq!(t.duplicated, s.duplicated);
        assert!(s.duplicated > 50, "every undropped original rolls a duplicate");
        assert!(s.delivered < 2 * s.duplicated, "duplicate copies must re-roll link loss");
    }

    #[test]
    fn duplicate_copies_reroll_jitter() {
        let mut gaps = Vec::new();
        for seed in 0..30 {
            let (mut net, a, b) = two_nodes(100 + seed);
            net.set_link(
                a,
                b,
                LinkConfig {
                    latency: SimDuration::from_millis(10),
                    jitter: SimDuration::from_millis(5),
                    drop_prob: 0.0,
                    dup_prob: 1.0,
                },
            );
            net.send(a, b, vec![0]);
            let first = net.step().unwrap().delivered_at;
            let second = net.step().unwrap().delivered_at;
            gaps.push(second.since(first).micros());
        }
        // The copy trails the original by latency plus a *fresh* jitter
        // roll; the old fixed-offset model pinned every gap at exactly
        // `latency`.
        assert!(gaps.iter().all(|&g| (10_000..=15_000).contains(&g)), "gaps: {gaps:?}");
        assert!(gaps.iter().any(|&g| g != 10_000), "copy jitter must be re-rolled: {gaps:?}");
    }

    #[test]
    fn drop_and_duplication_events_are_drained() {
        let (mut net, a, b) = two_nodes(15);
        net.set_link(a, b, LinkConfig { drop_prob: 1.0, ..Default::default() });
        net.set_link(
            b,
            a,
            LinkConfig { dup_prob: 1.0, ..LinkConfig::ideal(SimDuration::from_millis(1)) },
        );
        net.send_tagged(a, b, vec![1], Some(9));
        net.send(b, a, vec![2]);
        net.run_until_quiet();
        let evs = net.take_events();
        assert_eq!(evs.len(), 2);
        assert_eq!(
            evs[0],
            NetEvent {
                at: SimTime::ZERO,
                src: a,
                dst: b,
                txn: Some(9),
                kind: NetEventKind::Dropped
            }
        );
        assert_eq!(evs[1].kind, NetEventKind::Duplicated);
        assert_eq!(evs[1].txn, None, "untagged traffic yields untagged events");
        assert!(net.take_events().is_empty(), "drain empties the buffer");
    }

    #[test]
    fn event_buffer_is_bounded() {
        let (mut net, a, b) = two_nodes(16);
        net.set_link(a, b, LinkConfig { drop_prob: 1.0, ..Default::default() });
        let n = (1u64 << 16) + 10;
        for _ in 0..n {
            net.send(a, b, vec![0]);
        }
        assert_eq!(net.take_events().len(), 1 << 16);
        assert_eq!(net.events_lost, 10);
        assert_eq!(net.stats.dropped, n, "counters stay exact past the cap");
    }

    #[test]
    fn duplicated_large_payload_shares_one_allocation() {
        // Zero-copy acceptance: a 1 MiB payload duplicated by the link
        // reaches the inbox twice with no payload allocation beyond the
        // sender's original buffer, and the byte accounting is identical to
        // the deep-copying implementation's.
        let (mut net, a, b) = two_nodes(42);
        net.set_link(
            a,
            b,
            LinkConfig { dup_prob: 1.0, ..LinkConfig::ideal(SimDuration::from_millis(1)) },
        );
        let payload = Bytes::from(vec![0xabu8; 1 << 20]);
        assert_eq!(payload.strong_count(), 1);
        net.send_tagged(a, b, payload.clone(), Some(3));
        net.run_until_quiet();
        assert_eq!(net.inbox_len(b), 2, "original + duplicate");
        let first = net.recv(b).unwrap();
        let second = net.recv(b).unwrap();
        assert!(first.payload.same_allocation(&payload));
        assert!(second.payload.same_allocation(&payload));
        assert_eq!(first.payload, second.payload);
        // Handles: ours + the two inbox envelopes we popped. Nothing else
        // holds the buffer once the queue drained.
        assert_eq!(payload.strong_count(), 3);
        drop(first);
        drop(second);
        assert_eq!(payload.strong_count(), 1, "no hidden retained copies");
        // Byte tallies match the pre-change semantics: bytes are counted
        // once at send, duplicates are counted as deliveries, and the
        // conservation law holds.
        assert_eq!(net.stats.bytes_sent, 1 << 20);
        assert_eq!(net.stats.sent, 1);
        assert_eq!(net.stats.delivered, 2);
        assert_eq!(net.stats.duplicated, 1);
        assert_eq!(net.stats.delivered + net.stats.dropped, net.stats.sent + net.stats.duplicated);
        let t = net.txn_stats(3);
        assert_eq!((t.sent, t.bytes_sent, t.delivered, t.duplicated), (1, 1 << 20, 2, 1));
    }

    #[test]
    fn forwarding_a_payload_performs_no_deep_copies() {
        // The per-hop copy counter: with `Bytes` payloads, moving a message
        // src → dst (queue, duplicate, inbox, recv) never copies payload
        // bytes. Counter deltas are safe to assert here because this test
        // only *reads* the global counter around its own allocations-free
        // region after constructing the payload.
        let (mut net, a, b) = two_nodes(43);
        net.set_link(
            a,
            b,
            LinkConfig { dup_prob: 1.0, ..LinkConfig::ideal(SimDuration::from_millis(1)) },
        );
        let payload = Bytes::from(vec![7u8; 4096]);
        let env = {
            net.send(a, b, payload.clone());
            net.run_until_quiet();
            net.recv(b).unwrap()
        };
        // Every observable copy of the payload shares the allocation; a
        // deep copy anywhere in the path would break ptr equality.
        assert!(env.payload.same_allocation(&payload));
        assert!(net.recv(b).unwrap().payload.same_allocation(&payload));
    }

    #[test]
    fn advance_clock_only_never_delivers() {
        let (mut net, a, b) = two_nodes(12);
        net.set_link(a, b, LinkConfig::ideal(SimDuration::from_millis(10)));
        net.send(a, b, vec![0]);
        net.advance_clock_to(SimTime(9_000));
        assert_eq!(net.now().micros(), 9_000);
        assert_eq!(net.inbox_len(b), 0);
        net.advance_clock_to(SimTime(1_000)); // past: no-op
        assert_eq!(net.now().micros(), 9_000);
        // Advancing exactly to the delivery time is allowed (timers fire
        // before same-instant deliveries); beyond it would panic.
        net.advance_clock_to(SimTime(10_000));
        assert_eq!(net.inbox_len(b), 0);
    }

    #[test]
    #[should_panic(expected = "skip a scheduled delivery")]
    fn advance_clock_past_delivery_panics() {
        let (mut net, a, b) = two_nodes(13);
        net.set_link(a, b, LinkConfig::ideal(SimDuration::from_millis(10)));
        net.send(a, b, vec![0]);
        net.advance_clock_to(SimTime(10_001));
    }
}
