//! Shared immutable byte buffers for the zero-copy payload path.
//!
//! Every payload that crosses the simulator used to be deep-copied at
//! least twice per hop (into the delivery queue and again into the inbox),
//! and once more per duplicate. [`Bytes`] replaces those copies with
//! reference-counted views: cloning bumps a refcount, slicing produces a
//! subview of the same allocation, and the whole chain from an envelope
//! through the codec down to provider storage can share one buffer.
//!
//! **Immutability invariant** (see DESIGN.md §4.10): a `Bytes` never hands
//! out `&mut` access. Code that wants to alter a payload — interceptors
//! returning `Action::Modify`, the storage tamper model — must materialize
//! a fresh `Vec<u8>` and wrap that, so every other holder of the original
//! allocation keeps seeing the original bytes. This is also what makes
//! digest memoization by allocation identity
//! ([`tpnr_crypto::hash::DigestCache`]) sound: while any pinned reference
//! to the allocation exists, its contents cannot change.
//!
//! The module keeps two process-wide counters of *deep* copies performed
//! by [`Bytes::copy_from_slice`] (the only constructor that copies). The
//! bench harness uses them to demonstrate that forwarding a payload
//! through the simulator performs zero payload copies per hop.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Process-wide count of deep copies made by [`Bytes::copy_from_slice`].
static DEEP_COPIES: AtomicU64 = AtomicU64::new(0);
/// Process-wide total bytes deep-copied by [`Bytes::copy_from_slice`].
static DEEP_COPY_BYTES: AtomicU64 = AtomicU64::new(0);

/// A cheaply cloneable, immutable view into a shared byte allocation.
///
/// Internally `Arc<Vec<u8>>` plus a `[start, end)` window, so
/// [`Bytes::slice`] is allocation-free and [`From<Vec<u8>>`] is a pure
/// move (the vector's buffer becomes the shared allocation without a
/// copy).
#[derive(Clone)]
pub struct Bytes {
    buf: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty view (allocates an empty backing vector).
    pub fn new() -> Bytes {
        Bytes::from(Vec::new())
    }

    /// Copies `src` into a fresh allocation. This is the **only**
    /// constructor that copies payload bytes; it increments the global
    /// deep-copy counters so benches and tests can prove a path is
    /// copy-free.
    pub fn copy_from_slice(src: &[u8]) -> Bytes {
        DEEP_COPIES.fetch_add(1, Ordering::Relaxed);
        DEEP_COPY_BYTES.fetch_add(src.len() as u64, Ordering::Relaxed);
        Bytes::from(src.to_vec())
    }

    /// A zero-copy subview of this view. `range` is relative to `self`
    /// (so `b.slice(1..3)` of a slice starting at offset 10 covers
    /// absolute bytes 11..13 of the allocation).
    ///
    /// # Panics
    /// Panics if the range is out of bounds, like slice indexing.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bytes {
        assert!(range.start <= range.end, "slice range inverted");
        assert!(self.start + range.end <= self.end, "slice range out of bounds");
        Bytes {
            buf: self.buf.clone(),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// The backing allocation (for digest-cache identity and pinning).
    pub fn backing(&self) -> &Arc<Vec<u8>> {
        &self.buf
    }

    /// This view's `(start, end)` window within [`Bytes::backing`].
    pub fn range(&self) -> (usize, usize) {
        (self.start, self.end)
    }

    /// Number of `Bytes`/pinned handles sharing the backing allocation.
    pub fn strong_count(&self) -> usize {
        Arc::strong_count(&self.buf)
    }

    /// True when two views share one backing allocation (regardless of
    /// window).
    pub fn same_allocation(&self, other: &Bytes) -> bool {
        Arc::ptr_eq(&self.buf, &other.buf)
    }

    /// Hashes this view through `cache`, memoized on `(alg, allocation
    /// identity, window)` — the second request for the same view is a
    /// lookup, not a hash pass. Sound because the allocation is immutable
    /// while the cache pins it (see the module docs).
    pub fn digest_with(
        &self,
        cache: &mut tpnr_crypto::hash::DigestCache,
        alg: tpnr_crypto::hash::HashAlg,
    ) -> Vec<u8> {
        cache.hash(alg, &self.buf, self.start, self.end)
    }

    /// Process-wide deep-copy count (see [`Bytes::copy_from_slice`]).
    pub fn deep_copies() -> u64 {
        DEEP_COPIES.load(Ordering::Relaxed)
    }

    /// Process-wide deep-copied byte total.
    pub fn deep_copy_bytes() -> u64 {
        DEEP_COPY_BYTES.load(Ordering::Relaxed)
    }
}

impl From<Vec<u8>> for Bytes {
    /// Pure move: the vector's buffer becomes the shared allocation.
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes { buf: Arc::new(v), start: 0, end }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl<const N: usize> From<&[u8; N]> for Bytes {
    fn from(s: &[u8; N]) -> Bytes {
        Bytes::copy_from_slice(s)
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl std::ops::Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} of {} bytes)", self.len(), self.buf.len())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        **self == **other
    }
}

impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        **self == *other
    }
}

impl PartialEq<&[u8]> for Bytes {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

impl PartialEq<Vec<u8>> for Bytes {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl PartialEq<Bytes> for Vec<u8> {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == **other
    }
}

impl<const N: usize> PartialEq<[u8; N]> for Bytes {
    fn eq(&self, other: &[u8; N]) -> bool {
        **self == other[..]
    }
}

impl<const N: usize> PartialEq<&[u8; N]> for Bytes {
    fn eq(&self, other: &&[u8; N]) -> bool {
        **self == other[..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_is_a_move_not_a_copy() {
        let before = Bytes::deep_copies();
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b, [1, 2, 3]);
        assert_eq!(Bytes::deep_copies(), before, "From<Vec<u8>> must not deep-copy");
    }

    #[test]
    fn copy_from_slice_counts() {
        let (c0, b0) = (Bytes::deep_copies(), Bytes::deep_copy_bytes());
        let b = Bytes::copy_from_slice(b"hello");
        assert_eq!(b, b"hello");
        assert!(Bytes::deep_copies() > c0);
        assert!(Bytes::deep_copy_bytes() >= b0 + 5);
    }

    #[test]
    fn clone_shares_the_allocation() {
        let a = Bytes::from(vec![7u8; 64]);
        let b = a.clone();
        assert!(a.same_allocation(&b));
        assert_eq!(a.strong_count(), 2);
        drop(b);
        assert_eq!(a.strong_count(), 1);
    }

    #[test]
    fn slice_is_zero_copy_and_relative() {
        let a = Bytes::from((0u8..32).collect::<Vec<u8>>());
        let mid = a.slice(8..24);
        assert!(mid.same_allocation(&a));
        assert_eq!(mid.len(), 16);
        assert_eq!(mid[0], 8);
        let inner = mid.slice(4..8);
        assert!(inner.same_allocation(&a));
        assert_eq!(&inner[..], &[12, 13, 14, 15]);
        assert_eq!(inner.range(), (12, 16));
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        let a = Bytes::from(vec![0u8; 4]);
        let _ = a.slice(2..6);
    }

    #[test]
    fn equality_against_common_byte_shapes() {
        let b = Bytes::from(b"abc".to_vec());
        assert_eq!(b, *b"abc");
        assert_eq!(b, b"abc");
        assert_eq!(b, b"abc".to_vec());
        assert_eq!(b, &b"abc"[..]);
        assert_eq!(b"abc".to_vec(), b);
        assert_ne!(b, b"abd");
        let c = Bytes::from(b"abc".to_vec());
        assert_eq!(b, c, "equal content, different allocations");
        assert!(!b.same_allocation(&c));
    }

    #[test]
    fn empty_views() {
        let e = Bytes::new();
        assert!(e.is_empty());
        assert_eq!(e, b"");
        let b = Bytes::from(vec![1u8, 2]);
        let sub = b.slice(1..1);
        assert!(sub.is_empty());
    }

    #[test]
    fn digest_with_memoizes_on_identity() {
        use tpnr_crypto::hash::{DigestCache, HashAlg};
        let mut cache = DigestCache::new(8);
        let b = Bytes::from(vec![0xa5u8; 4096]);
        let d1 = b.digest_with(&mut cache, HashAlg::Sha256);
        assert_eq!(d1, HashAlg::Sha256.hash(&b));
        let (h0, m0) = (cache.hits(), cache.misses());
        let d2 = b.clone().digest_with(&mut cache, HashAlg::Sha256);
        assert_eq!(d1, d2);
        assert_eq!(cache.hits(), h0 + 1, "second request is a lookup");
        assert_eq!(cache.misses(), m0);
        // A different window of the same allocation is a different key.
        let d3 = b.slice(0..1024).digest_with(&mut cache, HashAlg::Sha256);
        assert_eq!(d3, HashAlg::Sha256.hash(&b[..1024]));
        assert_eq!(cache.misses(), m0 + 1);
    }
}
