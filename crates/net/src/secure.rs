//! Secure channel: the paper-era "SSL" session layer.
//!
//! Paper §2 repeatedly notes that each individual upload/download session is
//! protected by SSL. This module provides that per-session guarantee over
//! the simulator: an RSA key-transport handshake establishes directional
//! ChaCha20 + HMAC-SHA256 keys, frames carry sequence numbers, and the
//! receiver rejects tampering, truncation, reordering and within-session
//! replay.
//!
//! Crucially — and this is the vulnerability the paper analyses — the secure
//! channel says *nothing* about what happens to data **between** two
//! sessions (while it sits in cloud storage). The integrity experiments in
//! `tpnr-storage` tamper with stored data and show every SSL-protected
//! session still verifying cleanly.

use crate::bytes::Bytes;
use crate::codec::{Reader, Wire, Writer};
use tpnr_crypto::sha2::Sha256;
use tpnr_crypto::{chacha20, ct, ChaChaRng, CryptoError, Hmac, RsaKeyPair, RsaPublicKey};

/// Errors from the secure channel.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// Frame failed authentication.
    BadFrame,
    /// Sequence number was not the next expected one (reorder/replay).
    BadSequence { expected: u64, got: u64 },
    /// Handshake failure.
    Handshake(CryptoError),
    /// Frame too short / malformed.
    Malformed,
}

impl std::fmt::Display for ChannelError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ChannelError::BadFrame => write!(f, "frame authentication failed"),
            ChannelError::BadSequence { expected, got } => {
                write!(f, "bad sequence number: expected {expected}, got {got}")
            }
            ChannelError::Handshake(e) => write!(f, "handshake failed: {e}"),
            ChannelError::Malformed => write!(f, "malformed frame"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// Directional key material.
#[derive(Clone)]
struct DirectionKeys {
    cipher_key: [u8; 32],
    mac_key: [u8; 32],
}

/// One endpoint of an established secure session.
pub struct SecureSession {
    send_keys: DirectionKeys,
    recv_keys: DirectionKeys,
    send_seq: u64,
    recv_seq: u64,
}

/// The client's first handshake message: session keys wrapped for the
/// server's public key.
pub struct ClientHello {
    /// RSA-encrypted key block (client→server keys ‖ server→client keys).
    pub wrapped_keys: Vec<u8>,
}

impl Wire for ClientHello {
    fn encode(&self, w: &mut Writer) {
        w.bytes(&self.wrapped_keys);
    }
    fn decode(r: &mut Reader<'_>) -> Result<Self, crate::codec::CodecError> {
        Ok(ClientHello { wrapped_keys: r.bytes()? })
    }
}

const MASTER_LEN: usize = 32;

/// Expands the transported master secret into the four directional keys
/// (TLS-PRF-style labelled derivation, so a short RSA payload suffices).
fn split_keys(master: &[u8]) -> (DirectionKeys, DirectionKeys) {
    use tpnr_crypto::hash::Digest as _;
    let derive = |label: &[u8]| -> [u8; 32] {
        let mut h = Sha256::default();
        h.update(master);
        h.update(label);
        let mut out = [0u8; 32];
        out.copy_from_slice(&h.finalize());
        out
    };
    let c2s = DirectionKeys { cipher_key: derive(b"c2s-cipher"), mac_key: derive(b"c2s-mac") };
    let s2c = DirectionKeys { cipher_key: derive(b"s2c-cipher"), mac_key: derive(b"s2c-mac") };
    (c2s, s2c)
}

impl SecureSession {
    /// Client side: generates session keys and produces the hello to send.
    pub fn client_start(
        server_pk: &RsaPublicKey,
        rng: &mut ChaChaRng,
    ) -> Result<(SecureSession, ClientHello), ChannelError> {
        let mut master = [0u8; MASTER_LEN];
        rng.fill_bytes(&mut master);
        let wrapped = server_pk.encrypt(rng, &master).map_err(ChannelError::Handshake)?;
        let (c2s, s2c) = split_keys(&master);
        Ok((
            SecureSession { send_keys: c2s, recv_keys: s2c, send_seq: 0, recv_seq: 0 },
            ClientHello { wrapped_keys: wrapped },
        ))
    }

    /// Server side: accepts a hello and derives the mirror-image session.
    pub fn server_accept(
        server_keys: &RsaKeyPair,
        hello: &ClientHello,
    ) -> Result<SecureSession, ChannelError> {
        let master =
            server_keys.private.decrypt(&hello.wrapped_keys).map_err(ChannelError::Handshake)?;
        if master.len() != MASTER_LEN {
            return Err(ChannelError::Malformed);
        }
        let (c2s, s2c) = split_keys(&master);
        Ok(SecureSession { send_keys: s2c, recv_keys: c2s, send_seq: 0, recv_seq: 0 })
    }

    /// Encrypts and authenticates one application frame.
    ///
    /// Frame layout: `u64 seq ‖ ciphertext ‖ 32-byte HMAC(seq ‖ ciphertext)`.
    /// The nonce is derived from the sequence number, so each direction's
    /// keystream never repeats within a session.
    pub fn seal(&mut self, plaintext: &[u8]) -> Vec<u8> {
        let seq = self.send_seq;
        self.send_seq += 1;
        let mut nonce = [0u8; 12];
        nonce[4..].copy_from_slice(&seq.to_be_bytes());
        let mut body = plaintext.to_vec();
        chacha20::xor_stream(&self.send_keys.cipher_key, &nonce, 1, &mut body);
        let mut frame = Vec::with_capacity(8 + body.len() + 32);
        frame.extend_from_slice(&seq.to_be_bytes());
        frame.extend_from_slice(&body);
        let tag = Hmac::<Sha256>::mac(&self.send_keys.mac_key, &frame);
        frame.extend_from_slice(&tag);
        frame
    }

    /// [`SecureSession::seal`] into a shared buffer (pure move of the
    /// fresh frame — the ciphertext is new by construction, so wrapping it
    /// costs nothing and downstream simulator hops stay copy-free).
    pub fn seal_bytes(&mut self, plaintext: &[u8]) -> Bytes {
        Bytes::from(self.seal(plaintext))
    }

    /// [`SecureSession::open`] into a shared buffer (pure move of the
    /// fresh plaintext).
    pub fn open_bytes(&mut self, frame: &[u8]) -> Result<Bytes, ChannelError> {
        self.open(frame).map(Bytes::from)
    }

    /// Verifies and decrypts one frame; enforces strictly increasing
    /// in-order sequence numbers (replays and reorders are rejected).
    pub fn open(&mut self, frame: &[u8]) -> Result<Vec<u8>, ChannelError> {
        if frame.len() < 8 + 32 {
            return Err(ChannelError::Malformed);
        }
        let (body, tag) = frame.split_at(frame.len() - 32);
        if !ct::eq(&Hmac::<Sha256>::mac(&self.recv_keys.mac_key, body), tag) {
            return Err(ChannelError::BadFrame);
        }
        let seq_bytes: [u8; 8] = body[..8].try_into().map_err(|_| ChannelError::Malformed)?;
        let seq = u64::from_be_bytes(seq_bytes);
        if seq != self.recv_seq {
            return Err(ChannelError::BadSequence { expected: self.recv_seq, got: seq });
        }
        self.recv_seq += 1;
        let mut nonce = [0u8; 12];
        nonce[4..].copy_from_slice(&seq.to_be_bytes());
        let mut plain = body[8..].to_vec();
        chacha20::xor_stream(&self.recv_keys.cipher_key, &nonce, 1, &mut plain);
        Ok(plain)
    }
}

/// Establishes both ends of a session in one call (for in-process tests and
/// simulations where the hello trivially crosses the wire).
pub fn establish_pair(
    server_keys: &RsaKeyPair,
    rng: &mut ChaChaRng,
) -> Result<(SecureSession, SecureSession), ChannelError> {
    let (client, hello) = SecureSession::client_start(&server_keys.public, rng)?;
    // Round-trip the hello through its wire form, as the simulator would.
    let wire = hello.to_wire();
    let hello2 = ClientHello::from_wire(&wire).map_err(|_| ChannelError::Malformed)?;
    let server = SecureSession::server_accept(server_keys, &hello2)?;
    Ok((client, server))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureSession, SecureSession) {
        let server = RsaKeyPair::insecure_test_key(100);
        let mut rng = ChaChaRng::seed_from_u64(200);
        establish_pair(&server, &mut rng).unwrap()
    }

    #[test]
    fn duplex_roundtrip() {
        let (mut client, mut server) = pair();
        let f = client.seal(b"PUT /blob data");
        assert_eq!(server.open(&f).unwrap(), b"PUT /blob data");
        let f = server.seal(b"201 Created");
        assert_eq!(client.open(&f).unwrap(), b"201 Created");
    }

    #[test]
    fn many_frames_in_order() {
        let (mut client, mut server) = pair();
        for i in 0..100u32 {
            let f = client.seal(&i.to_be_bytes());
            assert_eq!(server.open(&f).unwrap(), i.to_be_bytes());
        }
    }

    #[test]
    fn tampering_detected() {
        let (mut client, mut server) = pair();
        let f = client.seal(b"sensitive");
        for i in 0..f.len() {
            let mut bad = f.clone();
            bad[i] ^= 0x80;
            let mut s2 = pair().1; // fresh receiver each time (seq state)
                                   // Use the real server for the actual frame check below; for the
                                   // flipped frame any verifier must reject.
            assert!(s2.open(&bad).is_err() || bad == f, "flip at {i}");
        }
        assert_eq!(server.open(&f).unwrap(), b"sensitive");
    }

    #[test]
    fn bytes_frames_roundtrip_over_the_simulator_types() {
        let (mut client, mut server) = pair();
        let frame = client.seal_bytes(b"zero-copy hop");
        // The sealed frame travels as shared bytes; opening yields shared
        // plaintext without an extra copy of either buffer.
        let plain = server.open_bytes(&frame).unwrap();
        assert_eq!(plain, b"zero-copy hop");
    }

    #[test]
    fn replay_within_session_rejected() {
        let (mut client, mut server) = pair();
        let f = client.seal(b"pay $100");
        assert!(server.open(&f).is_ok());
        let err = server.open(&f).unwrap_err();
        assert!(matches!(err, ChannelError::BadSequence { expected: 1, got: 0 }));
    }

    #[test]
    fn reorder_rejected() {
        let (mut client, mut server) = pair();
        let f0 = client.seal(b"first");
        let f1 = client.seal(b"second");
        assert!(matches!(server.open(&f1), Err(ChannelError::BadSequence { .. })));
        // After the failure the expected counter is unchanged; in-order still works.
        assert_eq!(server.open(&f0).unwrap(), b"first");
    }

    #[test]
    fn truncation_rejected() {
        let (mut client, mut server) = pair();
        let f = client.seal(b"data");
        assert!(server.open(&f[..f.len() - 1]).is_err());
        assert!(server.open(&[]).is_err());
        assert!(server.open(&f[..10]).is_err());
    }

    #[test]
    fn cross_session_frames_rejected() {
        let (mut c1, _s1) = pair();
        let server = RsaKeyPair::insecure_test_key(100);
        let mut rng = ChaChaRng::seed_from_u64(999); // different session keys
        let (_c2, mut s2) = establish_pair(&server, &mut rng).unwrap();
        let f = c1.seal(b"session 1 frame");
        assert_eq!(s2.open(&f), Err(ChannelError::BadFrame));
    }

    #[test]
    fn directions_use_independent_keys() {
        let (mut client, mut server) = pair();
        let cf = client.seal(b"x");
        let sf = server.seal(b"x");
        assert_ne!(cf, sf, "same plaintext, different directional keys");
    }

    #[test]
    fn malformed_hello_rejected() {
        let server = RsaKeyPair::insecure_test_key(100);
        assert!(
            SecureSession::server_accept(&server, &ClientHello { wrapped_keys: vec![] }).is_err()
        );
        assert!(SecureSession::server_accept(&server, &ClientHello { wrapped_keys: vec![1; 7] })
            .is_err());
    }

    #[test]
    fn wrong_server_key_fails_handshake() {
        let right = RsaKeyPair::insecure_test_key(100);
        let wrong = RsaKeyPair::insecure_test_key(101);
        let mut rng = ChaChaRng::seed_from_u64(5);
        let (_c, hello) = SecureSession::client_start(&right.public, &mut rng).unwrap();
        // Decrypting with the wrong key must fail padding or yield a
        // key block that can't authenticate traffic.
        match SecureSession::server_accept(&wrong, &hello) {
            Err(_) => {}
            Ok(mut s) => {
                let mut c = SecureSession::client_start(&right.public, &mut rng).unwrap().0;
                let f = c.seal(b"hi");
                assert!(s.open(&f).is_err());
            }
        }
    }
}
