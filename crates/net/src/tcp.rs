//! Real-wire [`Transport`] backends: loopback TCP and an in-process
//! channel, sharing one length-prefixed frame format.
//!
//! Two backends live here, both driving the exact same protocol code as
//! the simulator:
//!
//! * [`ChannelNet`] — frames travel through an in-process
//!   `std::sync::mpsc` pipe, encoded and decoded with the same
//!   [`WireFrame`] codec as TCP. Single-threaded, zero-latency,
//!   deterministic: the CI-friendly "real wire".
//! * [`TcpNet`] — frames travel over loopback TCP sockets
//!   (`127.0.0.1:0`): one listener, a lazily-opened stream per sending
//!   node, and a reader thread per accepted connection stamping arrivals
//!   with host-monotonic time. Per-connection FIFO and loss-free (TCP
//!   guarantees), but cross-connection arrival order and exact timing are
//!   up to the host scheduler — runs are *not* bit-reproducible.
//!
//! **NO-WALLCLOCK**: `net::tcp` is, with `net::time`, one of the two
//! modules allowed to touch `std::time` — the whole point of [`TcpNet`] is
//! to put the protocol on a host-monotonic clock. Time still only flows to
//! actors through [`Transport::now`], never read ambiently.
//!
//! Both backends uphold the conservation law
//! `delivered + dropped == sent + duplicated` (neither ever duplicates, so
//! for them `delivered + dropped == sent` once quiescent).

use crate::bytes::Bytes;
use crate::codec::{read_frame, write_frame, CodecError, Reader, Wire, Writer};
use crate::sim::{
    Action, Envelope, Interceptor, NetEvent, NetEventKind, NetStats, NodeId, TxnNetStats,
};
use crate::time::{SimDuration, SimTime};
use crate::transport::Transport;
use std::collections::{BTreeMap, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// One message as it crosses a real wire: routing metadata plus the opaque
/// payload, in the canonical length-prefixed codec. The transaction tag
/// rides along so per-txn accounting works on the receiving side exactly
/// like the simulator's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireFrame {
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Transaction attribution (`None` = untagged, e.g. adversary
    /// injections).
    pub txn: Option<u64>,
    /// Opaque payload bytes.
    pub payload: Bytes,
}

impl Wire for WireFrame {
    fn encode(&self, w: &mut Writer) {
        w.u32(self.src.0).u32(self.dst.0);
        match self.txn {
            Some(t) => w.bool(true).u64(t),
            None => w.bool(false).u64(0),
        };
        w.bytes(&self.payload);
    }

    fn decode(r: &mut Reader<'_>) -> Result<Self, CodecError> {
        let src = NodeId(r.u32()?);
        let dst = NodeId(r.u32()?);
        let tagged = r.bool()?;
        let raw = r.u64()?;
        let txn = tagged.then_some(raw);
        let payload = r.bytes_shared()?;
        Ok(WireFrame { src, dst, txn, payload })
    }
}

/// Bookkeeping shared by both real-wire backends: counters, per-txn stats,
/// wire events, node table, outage flags, the adversary hook.
struct WireCore {
    nodes: Vec<String>,
    down: Vec<bool>,
    interceptor: Option<Box<dyn Interceptor>>,
    stats: NetStats,
    txn_stats: BTreeMap<u64, TxnNetStats>,
    events: Vec<NetEvent>,
    events_lost: u64,
    /// Copies accepted for transmission but not yet counted delivered or
    /// dropped (in the pipe, in a socket buffer, or held by a Delay).
    outstanding: u64,
}

/// Same cap as the simulator's: a runner that never drains must not leak.
const EVENT_BUFFER_CAP: usize = 1 << 16;

impl WireCore {
    fn new() -> Self {
        WireCore {
            nodes: Vec::new(),
            down: Vec::new(),
            interceptor: None,
            stats: NetStats::default(),
            txn_stats: BTreeMap::new(),
            events: Vec::new(),
            events_lost: 0,
            outstanding: 0,
        }
    }

    fn register(&mut self, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(name.to_string());
        self.down.push(false);
        id
    }

    fn push_event(
        &mut self,
        at: SimTime,
        kind: NetEventKind,
        src: NodeId,
        dst: NodeId,
        txn: Option<u64>,
    ) {
        if self.events.len() >= EVENT_BUFFER_CAP {
            self.events_lost += 1;
            return;
        }
        self.events.push(NetEvent { at, src, dst, txn, kind });
    }

    fn drop_copy(&mut self, at: SimTime, src: NodeId, dst: NodeId, txn: Option<u64>) {
        self.stats.dropped += 1;
        if let Some(t) = txn {
            self.txn_stats.entry(t).or_default().dropped += 1;
        }
        self.push_event(at, NetEventKind::Dropped, src, dst, txn);
    }

    fn count_send(&mut self, payload_len: usize, txn: Option<u64>) {
        self.stats.sent += 1;
        self.stats.bytes_sent += payload_len as u64;
        if let Some(t) = txn {
            let ts = self.txn_stats.entry(t).or_default();
            ts.sent += 1;
            ts.bytes_sent += payload_len as u64;
        }
    }

    fn count_delivery(&mut self, at: SimTime, txn: Option<u64>) {
        self.stats.delivered += 1;
        if let Some(t) = txn {
            let ts = self.txn_stats.entry(t).or_default();
            ts.delivered += 1;
            ts.last_delivered_at = at;
        }
    }

    /// Runs the adversary over an outgoing frame. Returns the (possibly
    /// modified) frame to transmit plus any injected frames, or `None` if
    /// the adversary dropped the message (already accounted). The `Delay`
    /// hold-back duration rides along.
    #[allow(clippy::type_complexity)]
    fn apply_interceptor(
        &mut self,
        now: SimTime,
        mut frame: WireFrame,
    ) -> Option<(WireFrame, SimDuration, Vec<WireFrame>)> {
        let action = match self.interceptor.as_mut() {
            Some(i) => i.intercept(frame.src, frame.dst, &frame.payload, now),
            None => Action::Deliver,
        };
        let mut delay = SimDuration::ZERO;
        let mut injected = Vec::new();
        match action {
            Action::Deliver => {}
            Action::Drop => {
                self.drop_copy(now, frame.src, frame.dst, frame.txn);
                return None;
            }
            Action::Modify(p) => {
                self.stats.modified += 1;
                frame.payload = Bytes::from(p);
            }
            Action::InjectAfter(msgs) => {
                self.stats.injected += msgs.len() as u64;
                injected = msgs
                    .into_iter()
                    .map(|(src, dst, p)| WireFrame { src, dst, txn: None, payload: Bytes::from(p) })
                    .collect();
            }
            Action::Delay(d) => delay = d,
        }
        Some((frame, delay, injected))
    }
}

// ---------------------------------------------------------------------------
// ChannelNet
// ---------------------------------------------------------------------------

/// In-process SPSC-channel backend: real frame encode/decode, zero
/// latency, fully deterministic. See the module docs.
pub struct ChannelNet {
    core: WireCore,
    now: SimTime,
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    /// Frames already pulled off the pipe but not yet delivered.
    ready: VecDeque<Vec<u8>>,
    /// `Action::Delay`ed frames, with the time they go on the wire.
    held: Vec<(SimTime, Vec<u8>)>,
}

impl Default for ChannelNet {
    fn default() -> Self {
        Self::new()
    }
}

impl ChannelNet {
    /// A fresh channel wire at the epoch.
    pub fn new() -> Self {
        let (tx, rx) = mpsc::channel();
        ChannelNet {
            core: WireCore::new(),
            now: SimTime::ZERO,
            tx,
            rx,
            ready: VecDeque::new(),
            held: Vec::new(),
        }
    }

    fn transmit(&mut self, frame: &WireFrame) {
        let bytes = frame.to_wire();
        self.core.outstanding += 1;
        // An in-process pipe to ourselves cannot disconnect; if it somehow
        // does, the copy is accounted as dropped so conservation holds.
        if self.tx.send(bytes).is_err() {
            self.core.outstanding -= 1;
            self.core.drop_copy(self.now, frame.src, frame.dst, frame.txn);
        }
    }

    /// Puts frames whose hold-back expired on the wire, in due order.
    fn flush_held(&mut self, now: SimTime) {
        if self.held.is_empty() {
            return;
        }
        self.held.sort_by_key(|(due, _)| *due);
        while self.held.first().is_some_and(|(due, _)| *due <= now) {
            let (_, bytes) = self.held.remove(0);
            if let Err(lost) = self.tx.send(bytes) {
                // See `transmit`: an impossible disconnect degrades into a
                // counted drop, never a panic mid-settle.
                self.core.outstanding -= 1;
                match WireFrame::from_wire_bytes(&Bytes::from(lost.0)) {
                    Ok(f) => self.core.drop_copy(now, f.src, f.dst, f.txn),
                    Err(_) => self.core.stats.dropped += 1,
                }
            }
        }
    }

    /// Drains the pipe into the ready queue.
    fn pump(&mut self) {
        while let Ok(bytes) = self.rx.try_recv() {
            self.ready.push_back(bytes);
        }
    }
}

impl Transport for ChannelNet {
    fn now(&self) -> SimTime {
        self.now
    }

    fn advance_clock_to(&mut self, t: SimTime) {
        if t > self.now {
            self.now = t;
        }
    }

    fn register(&mut self, name: &str) -> NodeId {
        self.core.register(name)
    }

    fn node_name(&self, node: NodeId) -> Option<&str> {
        self.core.nodes.get(node.0 as usize).map(String::as_str)
    }

    fn send_tagged(&mut self, src: NodeId, dst: NodeId, payload: Bytes, txn: Option<u64>) {
        assert!((dst.0 as usize) < self.core.nodes.len(), "unknown destination");
        self.core.count_send(payload.len(), txn);
        let now = self.now;
        let Some((frame, delay, injected)) =
            self.core.apply_interceptor(now, WireFrame { src, dst, txn, payload })
        else {
            return;
        };
        if delay > SimDuration::ZERO {
            self.core.outstanding += 1;
            self.held.push((now.after(delay), frame.to_wire()));
        } else {
            self.transmit(&frame);
        }
        for inj in injected {
            self.transmit(&inj);
        }
    }

    fn poll_deliverable(&mut self, now: SimTime) -> Vec<Envelope> {
        self.advance_clock_to(now);
        self.flush_held(now);
        self.pump();
        let mut out = Vec::new();
        while let Some(bytes) = self.ready.pop_front() {
            self.core.outstanding -= 1;
            let wire = Bytes::from(bytes);
            let frame = match WireFrame::from_wire_bytes(&wire) {
                Ok(f) => f,
                Err(_) => {
                    // A corrupt frame cannot appear on an in-process pipe;
                    // if one does, count the copy dropped instead of
                    // panicking mid-settle (conservation stays exact).
                    self.core.stats.dropped += 1;
                    continue;
                }
            };
            if self.core.down[frame.dst.0 as usize] {
                self.core.drop_copy(now, frame.src, frame.dst, frame.txn);
                continue;
            }
            self.core.count_delivery(now, frame.txn);
            out.push(Envelope {
                src: frame.src,
                dst: frame.dst,
                payload: frame.payload,
                delivered_at: now,
                txn: frame.txn,
            });
        }
        out
    }

    fn next_deliverable_at(&mut self) -> Option<SimTime> {
        self.pump();
        if !self.ready.is_empty() {
            return Some(self.now);
        }
        self.held.iter().map(|(due, _)| *due).min()
    }

    fn in_flight(&self) -> bool {
        self.core.outstanding > 0
    }

    fn take_events(&mut self) -> Vec<NetEvent> {
        std::mem::take(&mut self.core.events)
    }

    fn stats(&self) -> NetStats {
        self.core.stats
    }

    fn txn_stats(&self, txn: u64) -> TxnNetStats {
        self.core.txn_stats.get(&txn).copied().unwrap_or_default()
    }

    fn tagged_txns(&self) -> Vec<u64> {
        self.core.txn_stats.keys().copied().collect()
    }

    fn retire_txn(&mut self, txn: u64) -> TxnNetStats {
        self.core.txn_stats.remove(&txn).unwrap_or_default()
    }

    fn set_interceptor(&mut self, i: Box<dyn Interceptor>) {
        self.core.interceptor = Some(i);
    }

    fn clear_interceptor(&mut self) {
        self.core.interceptor = None;
    }

    fn set_node_down(&mut self, node: NodeId, down: bool) {
        self.core.down[node.0 as usize] = down;
    }

    fn events_lost(&self) -> u64 {
        self.core.events_lost
    }
}

// ---------------------------------------------------------------------------
// TcpNet
// ---------------------------------------------------------------------------

/// Arrival queue shared between reader threads and the driver.
struct ArrivalQueue {
    q: Mutex<VecDeque<Envelope>>,
    cv: Condvar,
}

/// Loopback-TCP backend: real sockets, real threads, host-monotonic time.
/// See the module docs for the determinism contract (per-connection FIFO,
/// loss-free; cross-connection order is the host scheduler's).
pub struct TcpNet {
    core: WireCore,
    start: std::time::Instant,
    addr: SocketAddr,
    /// Lazily-opened outbound stream per sending node.
    conns: Vec<Option<TcpStream>>,
    arrivals: Arc<ArrivalQueue>,
    /// `Action::Delay`ed frames `(due, src, bytes)`, written when due.
    held: Vec<(SimTime, NodeId, Vec<u8>)>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    reader_threads: Arc<Mutex<Vec<JoinHandle<()>>>>,
}

/// Per-call ceiling on how long [`TcpNet::wait_for_activity`] blocks for
/// in-flight frames before giving up (a stuck peer must not hang settle
/// forever; the conservation gate then exposes the stranded frames).
const QUIESCE_GRACE: SimDuration = SimDuration::from_secs(2);

/// Condvar wait chunk while blocking for activity.
const WAIT_CHUNK: SimDuration = SimDuration::from_millis(10);

impl TcpNet {
    /// Binds a loopback listener and starts the accept thread. Fails if
    /// the host forbids binding `127.0.0.1:0` (report and fall back to
    /// [`ChannelNet`] in that case).
    pub fn new() -> io::Result<Self> {
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let addr = listener.local_addr()?;
        let arrivals =
            Arc::new(ArrivalQueue { q: Mutex::new(VecDeque::new()), cv: Condvar::new() });
        let shutdown = Arc::new(AtomicBool::new(false));
        let reader_threads = Arc::new(Mutex::new(Vec::new()));
        let start = std::time::Instant::now();

        let accept_thread = {
            let arrivals = Arc::clone(&arrivals);
            let shutdown = Arc::clone(&shutdown);
            let readers = Arc::clone(&reader_threads);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(stream) = stream else { break };
                    let arrivals = Arc::clone(&arrivals);
                    let shutdown = Arc::clone(&shutdown);
                    let handle = std::thread::spawn(move || {
                        Self::reader_loop(stream, start, arrivals, shutdown);
                    });
                    readers.lock().unwrap_or_else(std::sync::PoisonError::into_inner).push(handle);
                }
            })
        };

        Ok(TcpNet {
            core: WireCore::new(),
            start,
            addr,
            conns: Vec::new(),
            arrivals,
            held: Vec::new(),
            shutdown,
            accept_thread: Some(accept_thread),
            reader_threads,
        })
    }

    /// Reads frames off one accepted connection, stamping arrivals with
    /// host-monotonic microseconds since the transport started.
    fn reader_loop(
        mut stream: TcpStream,
        start: std::time::Instant,
        arrivals: Arc<ArrivalQueue>,
        shutdown: Arc<AtomicBool>,
    ) {
        while !shutdown.load(Ordering::SeqCst) {
            let Ok(body) = read_frame(&mut stream) else { break };
            let wire = Bytes::from(body);
            let Ok(frame) = WireFrame::from_wire_bytes(&wire) else { break };
            let at = SimTime(start.elapsed().as_micros() as u64);
            let env = Envelope {
                src: frame.src,
                dst: frame.dst,
                payload: frame.payload,
                delivered_at: at,
                txn: frame.txn,
            };
            let mut q = arrivals.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            q.push_back(env);
            arrivals.cv.notify_all();
        }
    }

    fn host_now(&self) -> SimTime {
        SimTime(self.start.elapsed().as_micros() as u64)
    }

    /// Writes one encoded frame on `src`'s connection, opening it lazily.
    /// A write failure strands the copy as a counted drop (the wire, not
    /// the protocol, lost it).
    fn write_wire(&mut self, src: NodeId, dst: NodeId, txn: Option<u64>, bytes: &[u8]) {
        let slot = src.0 as usize;
        if self.conns[slot].is_none() {
            match TcpStream::connect(self.addr) {
                Ok(s) => {
                    let _ = s.set_nodelay(true);
                    self.conns[slot] = Some(s);
                }
                Err(_) => {
                    self.core.outstanding -= 1;
                    let at = self.host_now();
                    self.core.drop_copy(at, src, dst, txn);
                    return;
                }
            }
        }
        let ok = match self.conns[slot].as_mut() {
            Some(stream) => write_frame(stream, bytes).is_ok(),
            None => false,
        };
        if !ok {
            self.conns[slot] = None;
            self.core.outstanding -= 1;
            let at = self.host_now();
            self.core.drop_copy(at, src, dst, txn);
        }
    }

    /// Puts frames whose hold-back expired on the wire, in due order.
    fn flush_held(&mut self, now: SimTime) {
        if self.held.is_empty() {
            return;
        }
        self.held.sort_by_key(|(due, _, _)| *due);
        while self.held.first().is_some_and(|(due, _, _)| *due <= now) {
            let (_, src, bytes) = self.held.remove(0);
            // Destination/txn for drop accounting live inside the frame;
            // decode is cheap relative to a socket write.
            let wire = Bytes::from(bytes);
            match WireFrame::from_wire_bytes(&wire) {
                Ok(frame) => self.write_wire(src, frame.dst, frame.txn, &wire),
                Err(_) => {
                    // Self-encoded frames always decode; degrade an
                    // impossible corruption into a counted drop.
                    self.core.outstanding -= 1;
                    self.core.stats.dropped += 1;
                }
            }
        }
    }

    fn next_held_due(&self) -> Option<SimTime> {
        self.held.iter().map(|(due, _, _)| *due).min()
    }
}

impl Drop for TcpNet {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Close outbound streams so reader threads see EOF…
        self.conns.clear();
        // …and poke the accept loop awake.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept_thread.take() {
            let _ = h.join();
        }
        let handles = std::mem::take(
            &mut *self.reader_threads.lock().unwrap_or_else(std::sync::PoisonError::into_inner),
        );
        for h in handles {
            let _ = h.join();
        }
    }
}

impl Transport for TcpNet {
    fn now(&self) -> SimTime {
        self.host_now()
    }

    fn advance_clock_to(&mut self, t: SimTime) {
        // Host time is the clock: "advancing" means waiting for it.
        let now = self.host_now();
        if t > now {
            std::thread::sleep(std::time::Duration::from_micros(t.0 - now.0));
        }
    }

    fn register(&mut self, name: &str) -> NodeId {
        self.conns.push(None);
        self.core.register(name)
    }

    fn node_name(&self, node: NodeId) -> Option<&str> {
        self.core.nodes.get(node.0 as usize).map(String::as_str)
    }

    fn send_tagged(&mut self, src: NodeId, dst: NodeId, payload: Bytes, txn: Option<u64>) {
        assert!((dst.0 as usize) < self.core.nodes.len(), "unknown destination");
        self.core.count_send(payload.len(), txn);
        let now = self.host_now();
        let Some((frame, delay, injected)) =
            self.core.apply_interceptor(now, WireFrame { src, dst, txn, payload })
        else {
            return;
        };
        let bytes = frame.to_wire();
        self.core.outstanding += 1;
        if delay > SimDuration::ZERO {
            self.held.push((now.after(delay), frame.src, bytes));
        } else {
            self.write_wire(frame.src, frame.dst, frame.txn, &bytes);
        }
        for inj in injected {
            let b = inj.to_wire();
            self.core.outstanding += 1;
            self.write_wire(inj.src, inj.dst, inj.txn, &b);
        }
    }

    fn poll_deliverable(&mut self, now: SimTime) -> Vec<Envelope> {
        self.flush_held(now);
        let drained: Vec<Envelope> = {
            let mut q = self.arrivals.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            q.drain(..).collect()
        };
        let mut out = Vec::new();
        for env in drained {
            self.core.outstanding -= 1;
            if self.core.down[env.dst.0 as usize] {
                self.core.drop_copy(env.delivered_at, env.src, env.dst, env.txn);
                continue;
            }
            self.core.count_delivery(env.delivered_at, env.txn);
            out.push(env);
        }
        out
    }

    fn next_deliverable_at(&mut self) -> Option<SimTime> {
        self.flush_held(self.host_now());
        {
            let q = self.arrivals.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(front) = q.front() {
                return Some(front.delivered_at);
            }
        }
        self.next_held_due()
    }

    fn in_flight(&self) -> bool {
        self.core.outstanding > 0
    }

    fn take_events(&mut self) -> Vec<NetEvent> {
        std::mem::take(&mut self.core.events)
    }

    fn stats(&self) -> NetStats {
        self.core.stats
    }

    fn txn_stats(&self, txn: u64) -> TxnNetStats {
        self.core.txn_stats.get(&txn).copied().unwrap_or_default()
    }

    fn tagged_txns(&self) -> Vec<u64> {
        self.core.txn_stats.keys().copied().collect()
    }

    fn retire_txn(&mut self, txn: u64) -> TxnNetStats {
        self.core.txn_stats.remove(&txn).unwrap_or_default()
    }

    fn set_interceptor(&mut self, i: Box<dyn Interceptor>) {
        self.core.interceptor = Some(i);
    }

    fn clear_interceptor(&mut self) {
        self.core.interceptor = None;
    }

    fn set_node_down(&mut self, node: NodeId, down: bool) {
        self.core.down[node.0 as usize] = down;
    }

    fn wait_for_activity(&mut self, until: Option<SimTime>) -> bool {
        let entered = self.host_now();
        loop {
            let now = self.host_now();
            self.flush_held(now);
            {
                let q = self.arrivals.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
                if !q.is_empty() {
                    return true;
                }
            }
            match until {
                Some(t) if now >= t => return false,
                None if !self.in_flight() => return false,
                None if now.since(entered) >= QUIESCE_GRACE => return false,
                _ => {}
            }
            // Sleep until the timer, the next held frame, or the chunk
            // boundary — whichever comes first — or a frame arrival.
            let mut wake = now.after(WAIT_CHUNK);
            if let Some(t) = until {
                wake = wake.min(t);
            }
            if let Some(due) = self.next_held_due() {
                wake = wake.min(due);
            }
            let dur = std::time::Duration::from_micros(wake.0.saturating_sub(now.0).max(1));
            let q = self.arrivals.q.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
            let (q, _timeout) = self
                .arrivals
                .cv
                .wait_timeout(q, dur)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if !q.is_empty() {
                return true;
            }
        }
    }

    fn events_lost(&self) -> u64 {
        self.core.events_lost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_frame_roundtrip() {
        let f = WireFrame {
            src: NodeId(3),
            dst: NodeId(7),
            txn: Some(42),
            payload: Bytes::from(b"evidence".to_vec()),
        };
        let enc = f.to_wire();
        assert_eq!(WireFrame::from_wire(&enc).unwrap(), f);
        let untagged = WireFrame { txn: None, ..f };
        let enc2 = untagged.to_wire();
        assert_eq!(WireFrame::from_wire(&enc2).unwrap().txn, None);
        // Canonicity: tagged and untagged encodings are distinct and
        // re-encode byte-identically.
        assert_ne!(enc, enc2);
        assert_eq!(WireFrame::from_wire(&enc).unwrap().to_wire(), enc);
    }

    /// Drives any backend to quiescence through the trait, like settle's
    /// delivery arm does.
    fn drain(net: &mut dyn Transport) -> Vec<Envelope> {
        let mut out = Vec::new();
        loop {
            match net.next_deliverable_at() {
                Some(at) => {
                    let now = net.now().max(at);
                    net.advance_clock_to(now);
                    out.extend(net.poll_deliverable(now));
                }
                None => {
                    if !net.wait_for_activity(None) {
                        break;
                    }
                }
            }
        }
        out
    }

    #[test]
    fn channel_delivers_in_fifo_order_with_conservation() {
        let mut net = ChannelNet::new();
        let a = net.register("alice");
        let b = net.register("bob");
        for i in 0..10u8 {
            net.send_tagged(a, b, Bytes::from(vec![i]), Some(1));
        }
        let got = drain(&mut net);
        assert_eq!(got.len(), 10);
        for (i, env) in got.iter().enumerate() {
            assert_eq!(env.payload, vec![i as u8]);
            assert_eq!(env.src, a);
            assert_eq!(env.txn, Some(1));
        }
        let s = net.stats();
        assert_eq!(s.delivered + s.dropped, s.sent + s.duplicated);
        assert!(!net.in_flight());
        let t = Transport::txn_stats(&net, 1);
        assert_eq!((t.sent, t.delivered, t.bytes_sent), (10, 10, 10));
    }

    #[test]
    fn channel_down_node_drops_and_events_surface() {
        let mut net = ChannelNet::new();
        let a = net.register("a");
        let b = net.register("b");
        net.set_node_down(b, true);
        net.send_tagged(a, b, Bytes::from(b"lost".to_vec()), Some(5));
        assert!(drain(&mut net).is_empty());
        let s = net.stats();
        assert_eq!((s.sent, s.delivered, s.dropped), (1, 0, 1));
        let evs = net.take_events();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].kind, NetEventKind::Dropped);
        assert_eq!(evs[0].txn, Some(5));
        net.set_node_down(b, false);
        net.send(a, b, Bytes::from(b"back".to_vec()));
        assert_eq!(drain(&mut net).len(), 1);
    }

    #[test]
    fn channel_interceptor_full_action_surface() {
        let mut net = ChannelNet::new();
        let a = net.register("a");
        let b = net.register("b");
        net.set_interceptor(Box::new(|s: NodeId, d: NodeId, p: &[u8], _t| match p {
            b"secret" => Action::Modify(b"tampered".to_vec()),
            b"kill" => Action::Drop,
            b"echo" => Action::InjectAfter(vec![(s, d, p.to_vec())]),
            b"slow" => Action::Delay(SimDuration::from_millis(50)),
            _ => Action::Deliver,
        }));
        net.send(a, b, Bytes::from(b"secret".to_vec()));
        net.send(a, b, Bytes::from(b"kill".to_vec()));
        net.send(a, b, Bytes::from(b"echo".to_vec()));
        net.send(a, b, Bytes::from(b"slow".to_vec()));
        let got = drain(&mut net);
        let payloads: Vec<&[u8]> = got.iter().map(|e| &e.payload[..]).collect();
        assert_eq!(payloads, vec![&b"tampered"[..], b"echo", b"echo", b"slow"]);
        // The delayed frame only went on the wire once the clock passed
        // its hold-back.
        assert!(got.last().unwrap().delivered_at >= SimTime(50_000));
        let s = net.stats();
        assert_eq!(s.modified, 1);
        assert_eq!(s.injected, 1);
        assert_eq!(s.delivered + s.dropped, s.sent + s.injected);
    }

    #[test]
    fn tcp_roundtrip_and_conservation() {
        let Ok(mut net) = TcpNet::new() else {
            eprintln!("loopback bind unavailable; skipping tcp test");
            return;
        };
        let a = net.register("alice");
        let b = net.register("bob");
        for i in 0..20u8 {
            net.send_tagged(a, b, Bytes::from(vec![i]), Some(9));
        }
        let got = drain(&mut net);
        assert_eq!(got.len(), 20);
        // Single connection ⇒ FIFO end to end.
        for (i, env) in got.iter().enumerate() {
            assert_eq!(env.payload, vec![i as u8]);
        }
        let s = net.stats();
        assert_eq!(s.delivered + s.dropped, s.sent + s.duplicated);
        assert_eq!(s.delivered, 20);
        assert!(!net.in_flight());
        assert_eq!(Transport::txn_stats(&net, 9).delivered, 20);
    }

    #[test]
    fn tcp_down_node_drops_at_poll() {
        let Ok(mut net) = TcpNet::new() else {
            eprintln!("loopback bind unavailable; skipping tcp test");
            return;
        };
        let a = net.register("a");
        let b = net.register("b");
        net.set_node_down(b, true);
        net.send_tagged(a, b, Bytes::from(b"gone".to_vec()), Some(2));
        assert!(drain(&mut net).is_empty());
        let s = net.stats();
        assert_eq!((s.sent, s.delivered, s.dropped), (1, 0, 1));
        assert_eq!(net.take_events().len(), 1);
    }
}
