//! Minimal, dependency-free drop-in for the subset of `criterion` used by
//! the workspace's benches.
//!
//! The build environment cannot reach crates.io, so the real criterion is
//! unavailable. This shim keeps every bench target compiling and running:
//! each benchmark runs a short warm-up, then measures wall time over an
//! adaptively chosen iteration count and prints a `name: time/iter` line.
//! Statistical analysis, plots, and HTML reports are out of scope.
//!
//! Set `CRITERION_SHIM_QUICK=1` to run every closure exactly once (used by
//! CI smoke runs where timing fidelity does not matter).

#![forbid(unsafe_code)]

use std::fmt;
use std::time::{Duration, Instant};

/// Re-export of the standard black box.
pub use std::hint::black_box;

/// Benchmark identifier combining a function name with a parameter.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter`.
    pub fn new<P: fmt::Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId { id: format!("{function_name}/{parameter}") }
    }

    /// Just the parameter.
    pub fn from_parameter<P: fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

/// Throughput annotation (recorded, used to print a rate line).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Elements processed per iteration.
    Elements(u64),
}

/// Timing harness handed to bench closures.
pub struct Bencher {
    /// Measured mean nanoseconds per iteration (filled by `iter`).
    mean_ns: f64,
}

impl Bencher {
    /// Times `f`: short warm-up, then enough iterations to fill the
    /// measurement window (or exactly one when `CRITERION_SHIM_QUICK=1`).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if std::env::var_os("CRITERION_SHIM_QUICK").is_some() {
            let t = Instant::now();
            black_box(f());
            self.mean_ns = t.elapsed().as_nanos() as f64;
            return;
        }
        // Warm-up and pilot measurement.
        let pilot_start = Instant::now();
        black_box(f());
        let pilot = pilot_start.elapsed().max(Duration::from_nanos(1));
        let window = Duration::from_millis(200);
        let iters = (window.as_nanos() / pilot.as_nanos()).clamp(1, 10_000) as u64;
        let start = Instant::now();
        for _ in 0..iters {
            black_box(f());
        }
        self.mean_ns = start.elapsed().as_nanos() as f64 / iters as f64;
    }
}

fn human_time(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

fn report(name: &str, mean_ns: f64, throughput: Option<Throughput>) {
    let mut line = format!("{name:<60} {:>12}/iter", human_time(mean_ns));
    if let Some(tp) = throughput {
        let per_sec = |n: u64| n as f64 * 1e9 / mean_ns.max(1.0);
        match tp {
            Throughput::Bytes(n) => {
                line.push_str(&format!("  {:.2} MiB/s", per_sec(n) / (1024.0 * 1024.0)));
            }
            Throughput::Elements(n) => {
                line.push_str(&format!("  {:.0} elem/s", per_sec(n)));
            }
        }
    }
    println!("{line}");
}

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(name, b.mean_ns, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.to_string(), throughput: None, _parent: self }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the throughput used for rate reporting of subsequent benches.
    pub fn throughput(&mut self, tp: Throughput) -> &mut Self {
        self.throughput = Some(tp);
        self
    }

    /// Accepted for API compatibility; the shim sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b);
        report(&format!("{}/{}", self.name, id), b.mean_ns, self.throughput);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized, F: FnMut(&mut Bencher, &T)>(
        &mut self,
        id: I,
        input: &T,
        mut f: F,
    ) -> &mut Self {
        let id = id.into();
        let mut b = Bencher { mean_ns: 0.0 };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id), b.mean_ns, self.throughput);
        self
    }

    /// Ends the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// Declares a bench group function, as in real criterion.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            // `cargo test` / `cargo bench` pass harness flags we don't use.
            $($group();)+
        }
    };
}
