//! Regenerates every experiment table from EXPERIMENTS.md.
//!
//! Run with `cargo run --release -p tpnr-bench --bin experiments`.

use tpnr_bench::report::*;
use tpnr_bench::*;
use tpnr_crypto::hash::HashAlg;

fn main() {
    println!("{}", render_e1(&e1_vulnerability_matrix(2026)));
    println!(
        "{}",
        render_e2(&e2_protocol_comparison(&[10, 50, 100, 300], &[1024, 1 << 20, 16 << 20]))
    );
    println!("{}", render_e3(&e3_attack_matrix()));
    println!(
        "{}",
        render_e4(&e4_evidence_cost(
            &[1 << 10, 1 << 16, 1 << 20, 16 << 20],
            &[HashAlg::Md5, HashAlg::Sha256],
        ))
    );
    println!("{}", render_e5(&e5_shipping_overhead(&[24, 48, 72, 120])));
    println!("{}", render_e6(&e6_ttp_load(&[0.0, 0.05, 0.1, 0.2, 0.3, 0.5], 40)));
    println!("{}", render_e7(&e7_bridge_schemes(2026)));
}
