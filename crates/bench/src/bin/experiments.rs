//! Regenerates every experiment table from EXPERIMENTS.md.
//!
//! Run with `cargo run --release -p tpnr-bench --bin experiments`.
//!
//! Extra modes:
//! - `--trace-jsonl [path|-]` exports the observability stream of a faulted
//!   multi-client run as JSONL (stdout when the path is `-` or omitted);
//! - `--bench-e4 [path|-] [--quick]` emits the E4 evidence-cost sweep plus
//!   the zero-copy transport probes as JSONL (`BENCH_e4.json`); `--quick`
//!   caps the sweep at 1 MiB for the CI smoke step;
//! - `--bench-e8 [path|-] [--quick]` emits the E8 crash-recovery chaos
//!   sweep as JSONL (`BENCH_e8.json`); `--quick` trims probabilities and
//!   trial counts for the CI smoke step;
//! - `--bench-e10 [path|-] [--quick]` emits the E10 timer-wheel +
//!   sharded-state scale sweep as JSONL (`BENCH_e10.json`); `--quick` caps
//!   the client sweep at 50k for the CI smoke step;
//! - `--bench-e12 [path|-] [--quick]` emits the E12 fixed-limb RSA kernel
//!   sweep (sign/verify by key size × alg, batch-vs-serial verification,
//!   allocations per sign) as JSONL (`BENCH_e12.json`); `--quick` restricts
//!   to 512-bit keys with fewer timing rounds for the CI smoke step;
//! - `--bench-e13 [path|-] [--quick]` emits the E13 work-stealing scaling
//!   sweep (E10 scenario at fixed load across pool worker counts, with
//!   speedup/efficiency/steal counters and the determinism gate) as JSONL
//!   (`BENCH_e13.json`); `--quick` shrinks the client load for CI;
//! - `--bench-e14 [path|-] [--quick]` emits the E14 transport comparison
//!   (the same protocol workload on the deterministic simulator, the
//!   in-process channel wire and real loopback TCP, with throughput,
//!   conservation, evidence-loss and §5 attack-rejection gates) as JSONL
//!   (`BENCH_e14.json`); `--quick` shrinks the transaction count for CI;
//! - `--validate-jsonl <file>` syntax-checks such an export (CI uses this
//!   pair to guard the formats).

use tpnr_bench::report::*;
use tpnr_bench::*;
use tpnr_crypto::hash::HashAlg;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--trace-jsonl") => {
            let jsonl = trace_jsonl(2026);
            match args.get(1).map(String::as_str) {
                None | Some("-") => print!("{jsonl}"),
                Some(path) => {
                    if let Err(e) = std::fs::write(path, &jsonl) {
                        eprintln!("error: cannot write {path}: {e}");
                        std::process::exit(1);
                    }
                    let lines = jsonl.lines().count();
                    eprintln!("wrote {lines} JSONL lines to {path}");
                }
            }
        }
        Some("--bench-e4") => {
            let mut path: Option<&str> = None;
            let mut quick = false;
            for a in &args[1..] {
                match a.as_str() {
                    "--quick" => quick = true,
                    p => path = Some(p),
                }
            }
            let sizes: &[usize] = if quick {
                &[1 << 10, 1 << 16, 1 << 20]
            } else {
                &[1 << 10, 1 << 16, 1 << 20, 16 << 20]
            };
            let rows = e4_evidence_cost(sizes, &[HashAlg::Md5, HashAlg::Sha256]);
            let transport: Vec<(usize, u64, u64)> = sizes
                .iter()
                .map(|&s| {
                    let (copies, bytes) = e4_transport_copies(s);
                    (s, copies, bytes)
                })
                .collect();
            let json = render_bench_e4_json(&rows, &transport);
            match path {
                None | Some("-") => print!("{json}"),
                Some(p) => {
                    if let Err(e) = std::fs::write(p, &json) {
                        eprintln!("error: cannot write {p}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {} JSONL lines to {p}", json.lines().count());
                }
            }
        }
        Some("--bench-e8") => {
            let mut path: Option<&str> = None;
            let mut quick = false;
            for a in &args[1..] {
                match a.as_str() {
                    "--quick" => quick = true,
                    p => path = Some(p),
                }
            }
            let (permilles, trials): (&[u32], usize) =
                if quick { (&[0, 150, 300], 10) } else { (&[0, 100, 200, 300], 40) };
            let json = render_bench_e8_json(&e8_chaos(permilles, trials));
            match path {
                None | Some("-") => print!("{json}"),
                Some(p) => {
                    if let Err(e) = std::fs::write(p, &json) {
                        eprintln!("error: cannot write {p}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {} JSONL lines to {p}", json.lines().count());
                }
            }
        }
        Some("--bench-e10") => {
            let mut path: Option<&str> = None;
            let mut quick = false;
            for a in &args[1..] {
                match a.as_str() {
                    "--quick" => quick = true,
                    p => path = Some(p),
                }
            }
            let counts: &[usize] = if quick {
                &[1_000, 10_000, 50_000]
            } else {
                &[1_000, 10_000, 100_000, 250_000, 1_000_000]
            };
            let json = render_bench_e10_json(&e10_scale(counts, 2026));
            match path {
                None | Some("-") => print!("{json}"),
                Some(p) => {
                    if let Err(e) = std::fs::write(p, &json) {
                        eprintln!("error: cannot write {p}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {} JSONL lines to {p}", json.lines().count());
                }
            }
        }
        Some("--bench-e13") => {
            let mut path: Option<&str> = None;
            let mut quick = false;
            for a in &args[1..] {
                match a.as_str() {
                    "--quick" => quick = true,
                    p => path = Some(p),
                }
            }
            let clients = if quick { 2_048 } else { 20_480 };
            let json = render_bench_e13_json(&e13_worker_sweep(clients, 2026));
            match path {
                None | Some("-") => print!("{json}"),
                Some(p) => {
                    if let Err(e) = std::fs::write(p, &json) {
                        eprintln!("error: cannot write {p}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {} JSONL lines to {p}", json.lines().count());
                }
            }
        }
        Some("--bench-e14") => {
            let mut path: Option<&str> = None;
            let mut quick = false;
            for a in &args[1..] {
                match a.as_str() {
                    "--quick" => quick = true,
                    p => path = Some(p),
                }
            }
            let json = render_bench_e14_json(&e14_backend_comparison(2026, quick));
            match path {
                None | Some("-") => print!("{json}"),
                Some(p) => {
                    if let Err(e) = std::fs::write(p, &json) {
                        eprintln!("error: cannot write {p}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {} JSONL lines to {p}", json.lines().count());
                }
            }
        }
        Some("--bench-e12") => {
            let mut path: Option<&str> = None;
            let mut quick = false;
            for a in &args[1..] {
                match a.as_str() {
                    "--quick" => quick = true,
                    p => path = Some(p),
                }
            }
            let bit_sizes: &[usize] = if quick { &[512] } else { &[512, 1024, 2048] };
            let (rows, batches) = e12_rsa_kernels(bit_sizes, quick);
            let json = render_bench_e12_json(&rows, &batches);
            match path {
                None | Some("-") => print!("{json}"),
                Some(p) => {
                    if let Err(e) = std::fs::write(p, &json) {
                        eprintln!("error: cannot write {p}: {e}");
                        std::process::exit(1);
                    }
                    eprintln!("wrote {} JSONL lines to {p}", json.lines().count());
                }
            }
        }
        Some("--validate-jsonl") => {
            let Some(path) = args.get(1) else {
                eprintln!("usage: experiments --validate-jsonl <file>");
                std::process::exit(2);
            };
            let contents = match std::fs::read_to_string(path) {
                Ok(c) => c,
                Err(e) => {
                    eprintln!("error: cannot read {path}: {e}");
                    std::process::exit(1);
                }
            };
            match validate_jsonl(&contents) {
                Ok(n) => eprintln!("{path}: {n} valid JSONL lines"),
                Err(e) => {
                    eprintln!("error: {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        Some(other) => {
            eprintln!(
                "unknown flag {other}; supported: --trace-jsonl [path|-], \
                 --bench-e4 [path|-] [--quick], --bench-e8 [path|-] [--quick], \
                 --bench-e10 [path|-] [--quick], --bench-e12 [path|-] [--quick], \
                 --bench-e13 [path|-] [--quick], --bench-e14 [path|-] [--quick], \
                 --validate-jsonl <file>"
            );
            std::process::exit(2);
        }
        None => print_tables(),
    }
}

fn print_tables() {
    println!("{}", render_e1(&e1_vulnerability_matrix(2026)));
    println!(
        "{}",
        render_e2(&e2_protocol_comparison(&[10, 50, 100, 300], &[1024, 1 << 20, 16 << 20]))
    );
    println!("{}", render_e3(&e3_attack_matrix()));
    println!(
        "{}",
        render_e4(&e4_evidence_cost(
            &[1 << 10, 1 << 16, 1 << 20, 16 << 20],
            &[HashAlg::Md5, HashAlg::Sha256],
        ))
    );
    println!("{}", render_e5(&e5_shipping_overhead(&[24, 48, 72, 120])));
    println!("{}", render_e6(&e6_ttp_load(&[0.0, 0.05, 0.1, 0.2, 0.3, 0.5], 40)));
    println!("{}", render_e7(&e7_bridge_schemes(2026)));
    println!("{}", render_e8(&e8_chaos(&[0, 100, 200, 300], 40)));
    println!("{}", render_e10(&e10_scale(&[1_000, 5_000], 2026)));
    let (rows, batches) = e12_rsa_kernels(&[512, 1024], false);
    println!("{}", render_e12(&rows, &batches));
    println!("{}", render_e13(&e13_worker_sweep(2_048, 2026)));
    println!("{}", render_e14(&e14_backend_comparison(2026, true)));
}
