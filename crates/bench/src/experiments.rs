//! The E1–E10 experiment implementations (DESIGN.md §5).

use std::sync::{Arc, Mutex};
use tpnr_core::bridge::{self, BridgingScheme, DisputeScenario, SchemeKind};
use tpnr_core::client::TimeoutStrategy;
use tpnr_core::config::ProtocolConfig;
use tpnr_core::message::Message;
use tpnr_core::runner::{GenericWorld, World};
use tpnr_core::session::TxnState;
use tpnr_crypto::hash::HashAlg;
use tpnr_net::codec::Wire;
use tpnr_net::sim::{Action, LinkConfig, SimNet};
use tpnr_net::tcp::{ChannelNet, TcpNet};
use tpnr_net::time::HostStopwatch;
use tpnr_net::time::SimDuration;
use tpnr_net::time::SimTime;
use tpnr_net::transport::Transport;
use tpnr_net::Bytes;
use tpnr_storage::object::Tamper;
use tpnr_storage::platform::{all_platforms, ClientVerdict};

// ---------------------------------------------------------------- E1 ----

/// One row of the Figure-5 vulnerability matrix.
#[derive(Debug, Clone)]
pub struct E1Row {
    /// Platform ("Azure" / "AWS" / "GAE") or "TPNR".
    pub system: String,
    /// Tamper applied in storage.
    pub tamper: &'static str,
    /// Did the client's own check notice anything wrong?
    pub detected: bool,
    /// Can fault be *attributed* (non-repudiably pinned on the provider)?
    pub attributable: bool,
}

/// E1 / Figure 5: upload → tamper-in-storage → download on each platform
/// model, then the same story under TPNR.
pub fn e1_vulnerability_matrix(seed: u64) -> Vec<E1Row> {
    let mut rows = Vec::new();
    let tampers: [(&'static str, Tamper); 2] = [
        ("naive bit-flip", Tamper::BitFlip { offset: 3 }),
        ("consistent replace", Tamper::ConsistentReplace(b"forged".to_vec())),
    ];
    for (label, tamper) in &tampers {
        for mut p in all_platforms(seed) {
            p.upload("k", b"true data", SimTime::ZERO);
            p.tamper("k", tamper);
            let d = p.download("k").expect("object exists");
            rows.push(E1Row {
                system: p.name().to_string(),
                tamper: label,
                detected: d.client_check() == ClientVerdict::MismatchDetected,
                // No platform gives the client provider-signed commitments,
                // so even a *detected* mismatch cannot be pinned on the
                // provider (vs. the client's own upload or the transit).
                attributable: false,
            });
        }
        // TPNR: both tampers reduce to "stored bytes differ from the NRR'd
        // upload" — detected by the integrity link and provable in
        // arbitration.
        let mut w = World::new(seed, ProtocolConfig::full());
        let up = w.upload(b"k", b"true data".to_vec(), TimeoutStrategy::AbortFirst);
        match tamper {
            Tamper::BitFlip { .. } => {
                let mut cur = w.provider.peek_storage(b"k").unwrap().to_vec();
                cur[3] ^= 1;
                w.provider.tamper_storage(b"k", cur);
            }
            _ => {
                w.provider.tamper_storage(b"k", b"forged".to_vec());
            }
        }
        let down = w.download(b"k", TimeoutStrategy::AbortFirst);
        let detected =
            w.client.verify_download_against_upload(up.txn_id, down.txn_id) == Some(false);
        let verdict = {
            let arb = tpnr_core::arbiter::Arbitrator::new(ProtocolConfig::full(), w.dir.clone());
            let case = tpnr_core::arbiter::DisputeCase {
                claimant: Some(w.client.id()),
                respondent: Some(w.provider.id()),
                upload_nrr: w.client.txn(up.txn_id).and_then(|t| t.nrr.clone()),
                download_nrr: w.client.txn(down.txn_id).and_then(|t| t.nrr.clone()),
                upload_nro: w.provider.txn(up.txn_id).map(|t| t.nro.clone()),
                download_nro: w.provider.txn(down.txn_id).map(|t| t.nro.clone()),
            };
            arb.judge(&case)
        };
        rows.push(E1Row {
            system: "TPNR".to_string(),
            tamper: label,
            detected,
            attributable: verdict == tpnr_core::arbiter::Verdict::ProviderAtFault,
        });
    }
    rows
}

// ---------------------------------------------------------------- E2 ----

/// One row of the protocol-efficiency comparison.
#[derive(Debug, Clone)]
pub struct E2Row {
    /// "TPNR" or "traditional-NR".
    pub protocol: &'static str,
    /// Round-trip time of the simulated links.
    pub rtt_ms: u64,
    /// Payload size in bytes.
    pub size: usize,
    /// Wire messages used.
    pub messages: u64,
    /// Settlement latency in simulated milliseconds.
    pub latency_ms: f64,
    /// Whether the TTP was involved.
    pub ttp_used: bool,
}

/// E2 / Figure 6: TPNR Normal mode vs the traditional four-step protocol
/// across an RTT × size grid. The claim: 2 messages vs 4+ and strictly
/// lower latency at every point, with the TTP off-line for TPNR.
pub fn e2_protocol_comparison(rtts_ms: &[u64], sizes: &[usize]) -> Vec<E2Row> {
    let mut rows = Vec::new();
    for (i, &rtt) in rtts_ms.iter().enumerate() {
        for (j, &size) in sizes.iter().enumerate() {
            let seed = (i * 16 + j) as u64 + 1;
            let data = vec![0xabu8; size];
            let one_way = SimDuration::from_millis(rtt / 2);

            let mut w = World::new(seed, ProtocolConfig::full());
            w.set_all_links(LinkConfig::ideal(one_way));
            let r = w.upload(b"obj", data.clone(), TimeoutStrategy::AbortFirst);
            assert_eq!(r.outcome, TxnState::Completed);
            rows.push(E2Row {
                protocol: "TPNR",
                rtt_ms: rtt,
                size,
                messages: r.report.messages,
                latency_ms: r.report.latency.as_secs_f64() * 1e3,
                ttp_used: r.report.ttp_used,
            });

            let b = tpnr_core::baseline::run_exchange(seed, &data, one_way).expect("baseline run");
            rows.push(E2Row {
                protocol: "traditional-NR",
                rtt_ms: rtt,
                size,
                messages: b.messages,
                latency_ms: b.latency.as_secs_f64() * 1e3,
                ttp_used: b.ttp_used,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------- E3 ----

/// E3 / §5: the attack × ablation matrix (delegates to `tpnr-attacks`).
pub fn e3_attack_matrix() -> Vec<tpnr_attacks::AttackOutcome> {
    tpnr_attacks::matrix()
}

// ---------------------------------------------------------------- E4 ----

/// One row of the evidence-cost table.
#[derive(Debug, Clone)]
pub struct E4Row {
    /// Payload size hashed into the evidence.
    pub size: usize,
    /// Hash algorithm.
    pub alg: HashAlg,
    /// Microseconds to build (commit + one signing pass producing the wire
    /// evidence and the sender's archived copy).
    pub generate_us: f64,
    /// Microseconds to re-commit on the receiver and verify.
    pub verify_us: f64,
    /// Digest-memo hits across both parties for this size × alg cell.
    pub cache_hits: u64,
    /// Digest-memo misses (full hash passes) across both parties.
    pub cache_misses: u64,
    /// Deep payload copies performed during the measured loop (the shared
    /// [`tpnr_net::Bytes`] path keeps this at zero).
    pub deep_copies: u64,
    /// Bytes moved by those deep copies.
    pub deep_copy_bytes: u64,
}

/// E4: cost of evidence generation/verification vs payload size and hash.
/// Criterion benches cover the same path with proper statistics; this
/// variant feeds the printed table and `BENCH_e4.json`.
///
/// The loop mirrors the protocol's evidence hot path for repeated
/// transactions over one archived object (re-uploads, downloads, audits):
/// each party commits the shared payload through its own [`DigestCache`]
/// — so the object is hashed once per party, every later transaction is a
/// lookup — and the sender produces the wire evidence and its archived
/// copy in a single signing pass (`seal_and_own`).
pub fn e4_evidence_cost(sizes: &[usize], algs: &[HashAlg]) -> Vec<E4Row> {
    use tpnr_core::evidence::{open_and_verify, seal_and_own, EvidencePlaintext, Flag};
    use tpnr_core::principal::Principal;
    use tpnr_core::session::Payload;
    use tpnr_crypto::hash::DigestCache;
    use tpnr_crypto::ChaChaRng;
    use tpnr_net::Bytes;

    let alice = Principal::test("alice", 301);
    let bob = Principal::test("bob", 302);
    let ttp = Principal::test("ttp", 303);
    let mut rows = Vec::new();
    for &size in sizes {
        let data: Bytes = vec![0x5au8; size].into();
        for &alg in algs {
            let mut cfg = ProtocolConfig::full();
            cfg.hash_alg = alg;
            let mut rng = ChaChaRng::seed_from_u64(77);
            let reps = if size >= 1 << 22 { 3 } else { 10 };
            let mut client_cache = DigestCache::new(32);
            let mut provider_cache = DigestCache::new(32);
            let copies_before = Bytes::deep_copies();
            let copy_bytes_before = Bytes::deep_copy_bytes();

            let t0 = HostStopwatch::start();
            let mut made = Vec::new();
            for i in 0..reps {
                let payload = Payload { key: b"k".to_vec(), data: data.clone() };
                let pt = EvidencePlaintext {
                    flag: Flag::UploadRequest,
                    sender: alice.id(),
                    recipient: bob.id(),
                    ttp: ttp.id(),
                    txn_id: i as u64,
                    seq: 1,
                    nonce: i as u64,
                    time_limit: SimTime(1 << 40),
                    object: b"k".to_vec(),
                    hash_alg: alg,
                    data_hash: payload.commit_cached(&cfg, &mut client_cache),
                };
                let (sealed, _own) =
                    seal_and_own(&cfg, &alice, bob.public(), &pt, &mut rng).unwrap();
                made.push((payload, pt, sealed));
            }
            let generate_us = t0.elapsed_secs_f64() * 1e6 / reps as f64;

            let t0 = HostStopwatch::start();
            for (payload, pt, sealed) in &made {
                // Receiver side: re-commit the payload against its own memo
                // and check the signatures.
                let _ = payload.commit_cached(&cfg, &mut provider_cache);
                open_and_verify(&cfg, &bob, alice.public(), pt, sealed).unwrap();
            }
            let verify_us = t0.elapsed_secs_f64() * 1e6 / reps as f64;
            rows.push(E4Row {
                size,
                alg,
                generate_us,
                verify_us,
                cache_hits: client_cache.hits() + provider_cache.hits(),
                cache_misses: client_cache.misses() + provider_cache.misses(),
                deep_copies: Bytes::deep_copies() - copies_before,
                deep_copy_bytes: Bytes::deep_copy_bytes() - copy_bytes_before,
            });
        }
    }
    rows
}

/// Deep payload copies performed by one full TPNR upload round-trip of a
/// `size`-byte object, read from the global [`tpnr_net::Bytes`] counters.
/// The zero-copy wire path (shared envelopes, in-place frame views) keeps
/// this at 0; the pre-`Bytes` transport cloned the payload at least twice
/// per hop (outbox → queue, queue → inbox).
pub fn e4_transport_copies(size: usize) -> (u64, u64) {
    use tpnr_net::Bytes;
    let before = (Bytes::deep_copies(), Bytes::deep_copy_bytes());
    let mut w = World::new(404, ProtocolConfig::full());
    let r = w.upload(b"copy-probe", vec![0xa5u8; size], TimeoutStrategy::AbortFirst);
    assert_eq!(r.outcome, TxnState::Completed);
    (Bytes::deep_copies() - before.0, Bytes::deep_copy_bytes() - before.1)
}

// ---------------------------------------------------------------- E5 ----

/// One row of the shipping-overhead table.
#[derive(Debug, Clone)]
pub struct E5Row {
    /// Shipping transit time in hours.
    pub transit_hours: u64,
    /// Protocol settlement time in simulated milliseconds (TPNR over WAN).
    pub protocol_ms: f64,
    /// Protocol time as a fraction of the end-to-end import time.
    pub overhead_fraction: f64,
}

/// E5 / §6 claim: "the time required for executing the protocol is really
/// trivial comparing to the time consumed by delivering the storage devices
/// by surface mail."
pub fn e5_shipping_overhead(transit_hours: &[u64]) -> Vec<E5Row> {
    let mut rows = Vec::new();
    for (i, &hours) in transit_hours.iter().enumerate() {
        // The evidence exchange runs over a 100 ms-RTT WAN while the device
        // is in transit on a truck.
        let mut w = World::new(500 + i as u64, ProtocolConfig::full());
        w.set_all_links(LinkConfig::ideal(SimDuration::from_millis(50)));
        let r = w.upload(b"device-manifest", vec![0u8; 4096], TimeoutStrategy::AbortFirst);
        let protocol = r.report.latency;
        let shipping = SimDuration::from_hours(hours);
        let total = shipping.plus(protocol);
        rows.push(E5Row {
            transit_hours: hours,
            protocol_ms: protocol.as_secs_f64() * 1e3,
            overhead_fraction: protocol.as_secs_f64() / total.as_secs_f64(),
        });
    }
    rows
}

// ---------------------------------------------------------------- E6 ----

/// One row of the TTP-load curve.
#[derive(Debug, Clone)]
pub struct E6Row {
    /// Probability that the provider's receipt is lost.
    pub fault_rate: f64,
    /// Fraction of TPNR sessions that touched the TTP.
    pub tpnr_ttp_fraction: f64,
    /// Fraction of sessions that completed (vs failed/aborted).
    pub tpnr_completed_fraction: f64,
    /// Fraction of traditional-NR sessions that touch the TTP (always 1).
    pub baseline_ttp_fraction: f64,
}

/// E6 / §4.4 claim: the TTP is off-line — touched only when something goes
/// wrong — whereas the traditional protocol routes every session through it.
pub fn e6_ttp_load(fault_rates: &[f64], trials: usize) -> Vec<E6Row> {
    fault_rates
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            // Trials are independent simulations — embarrassingly parallel.
            let (ttp_hits, completed) = crate::par_map_indexed(trials, |t| {
                let mut w = World::new((i * 1000 + t) as u64 + 9000, ProtocolConfig::full());
                // Receipts (bob→alice) are lost with probability p.
                let (a, b) = (w.alice_node, w.bob_node);
                let _ = a;
                w.net_mut().set_link(b, a, LinkConfig::lossy(SimDuration::from_millis(25), p));
                let r = w.upload(b"obj", vec![1u8; 256], TimeoutStrategy::ResolveImmediately);
                (u64::from(r.report.ttp_used), u64::from(r.outcome == TxnState::Completed))
            })
            .into_iter()
            .fold((0, 0), |acc, x| (acc.0 + x.0, acc.1 + x.1));
            E6Row {
                fault_rate: p,
                tpnr_ttp_fraction: ttp_hits as f64 / trials as f64,
                tpnr_completed_fraction: completed as f64 / trials as f64,
                baseline_ttp_fraction: 1.0,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- E7 ----

/// One row of the bridging-scheme comparison.
#[derive(Debug, Clone)]
pub struct E7Row {
    /// Scheme variant.
    pub scheme: SchemeKind,
    /// Upload-session messages.
    pub messages: u32,
    /// Dispute records at user / provider / TAC (bytes).
    pub records: (usize, usize, usize),
    /// Tamper provable with a cooperative counterparty?
    pub proves_with_cooperation: bool,
    /// Tamper provable against an uncooperative counterparty (TAC up)?
    pub proves_alone: bool,
    /// Is the proof non-repudiable (attributable)?
    pub attributable: bool,
}

/// E7 / §3: the four bridging schemes side by side.
pub fn e7_bridge_schemes(seed: u64) -> Vec<E7Row> {
    let coop = DisputeScenario { counterparty_cooperates: true, tac_available: true };
    let alone = DisputeScenario { counterparty_cooperates: false, tac_available: true };
    SchemeKind::all()
        .into_iter()
        .map(|kind| {
            let mut s: Box<dyn BridgingScheme> = bridge::make_scheme(kind, seed);
            let sum = s.upload(b"the agreed data");
            s.tamper(b"tampered data");
            E7Row {
                scheme: kind,
                messages: sum.messages,
                records: (sum.user_record_bytes, sum.provider_record_bytes, sum.tac_record_bytes),
                proves_with_cooperation: s.tamper_proven(coop) == Some(true),
                proves_alone: s.tamper_proven(alone) == Some(true),
                attributable: s.dispute_power(coop).attributable
                    || s.dispute_power(alone).attributable,
            }
        })
        .collect()
}

// ---------------------------------------------------------------- E8 ----

/// One row of the E8 chaos sweep: outcome classification of a fleet of
/// transactions run under a given per-delivery crash probability.
#[derive(Debug, Clone)]
pub struct E8Row {
    /// Per-delivery crash probability, in permille (300 = 0.3).
    pub crash_prob_permille: u32,
    /// Independent transactions attempted at this probability.
    pub trials: u64,
    /// Completed with both NRO and NRR sealed — full evidence.
    pub completed_full_evidence: u64,
    /// Terminal (Aborted / AbortRejected / Failed) without a receipt, but
    /// the client still holds sealed evidence it can take to arbitration.
    pub arbitrable_terminal: u64,
    /// Neither — evidence-less limbo. The protocol's §4 claim is that this
    /// is zero at every crash probability.
    pub limbo: u64,
    /// Actor crashes injected across all trials.
    pub crashes: u64,
    /// Snapshot restarts performed across all trials.
    pub restarts: u64,
    /// Timeout-driven re-sends beyond the first attempt.
    pub retries: u64,
    /// Transactions whose retry budget was exhausted (now `Failed`).
    pub gave_up: u64,
    /// Durable-state bytes written by the write-ahead sync policy.
    pub snapshot_bytes: u64,
}

/// E8 / §4.11: crash-recovery chaos sweep. Alice, Bob and the TTP each
/// crash with the given probability per delivery (bounded budget per run)
/// and restart from their last durable snapshot; the client retries with
/// exponential backoff. The claim under test: every transaction either
/// completes with full evidence or terminates in an arbitrable state.
/// Deterministic in the trial seeds; all-integer rows so the JSONL export
/// is byte-identical across runs.
pub fn e8_chaos(crash_permilles: &[u32], trials: usize) -> Vec<E8Row> {
    use tpnr_core::fault::{FaultPlan, RetryPolicy};

    crash_permilles
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            // Trials are independent simulations — embarrassingly parallel.
            let per_trial = crate::par_map_indexed(trials, |t| {
                let seed = (i * 10_000 + t) as u64 + 80_000;
                let plan = FaultPlan::none()
                    .with_seed(seed)
                    .with_chaos(&["alice", "bob", "ttp"], p, 8)
                    .with_restart_delay(SimDuration::from_secs(2));
                let cfg = ProtocolConfig::builder()
                    .retry_policy(RetryPolicy::exponential(6))
                    .fault_plan(plan)
                    .build();
                let mut w = World::new(seed, cfg);
                let r = w.upload(b"obj", vec![1u8; 256], TimeoutStrategy::ResolveImmediately);
                let full = r.completed() && r.nrr.is_some();
                let arbitrable = !full && r.outcome.is_terminal() && r.nro.is_some();
                let f = w.fault_counters();
                [
                    u64::from(full),
                    u64::from(arbitrable),
                    u64::from(!full && !arbitrable),
                    f.crashes,
                    f.restarts,
                    f.retries,
                    f.gave_up,
                    f.snapshot_bytes,
                ]
            });
            let sum = per_trial.into_iter().fold([0u64; 8], |mut acc, x| {
                for (a, v) in acc.iter_mut().zip(x) {
                    *a += v;
                }
                acc
            });
            E8Row {
                crash_prob_permille: p,
                trials: trials as u64,
                completed_full_evidence: sum[0],
                arbitrable_terminal: sum[1],
                limbo: sum[2],
                crashes: sum[3],
                restarts: sum[4],
                retries: sum[5],
                gave_up: sum[6],
                snapshot_bytes: sum[7],
            }
        })
        .collect()
}

// --------------------------------------------------------------- E10 ----

/// One row of the E10 scale sweep: a population of `clients` clients, one
/// upload each, driven across independent simulation lanes in parallel.
/// All fields except the host-timing pair (`elapsed_ms`, `txn_per_sec`)
/// are deterministic in the seed.
#[derive(Debug, Clone)]
pub struct E10Row {
    /// Total simulated clients (= transactions attempted).
    pub clients: u64,
    /// Independent simulation lanes the population was split into.
    pub lanes: u64,
    /// Transactions completed with full evidence.
    pub completed: u64,
    /// Host wall-clock for build + run + verify, in milliseconds.
    pub elapsed_ms: u64,
    /// Settled transactions per host-second.
    pub txn_per_sec: u64,
    /// Median settle latency (sim-time µs, initiation → last delivery).
    pub p50_us: u64,
    /// 99th-percentile settle latency (sim-time µs).
    pub p99_us: u64,
    /// Sealed archive-log bytes per client (the at-rest evidence cost).
    pub bytes_per_client: u64,
    /// Messages handed to the simulator across all lanes.
    pub sent: u64,
    /// Messages delivered to an inbox (duplicates count per copy).
    pub delivered: u64,
    /// Messages the network lost.
    pub dropped: u64,
    /// Duplicate copies the network injected.
    pub duplicated: u64,
    /// Lanes where `delivered + dropped != sent + duplicated` (or that
    /// failed to reach quiescence). The conservation law must hold: 0.
    pub conservation_violations: u64,
    /// Settled txns evicted to sealed archive logs.
    pub evicted: u64,
    /// Archived bundles re-hydrated (the verify pass reads every one).
    pub rehydrated: u64,
    /// Live per-txn bookkeeping entries left across all lanes at the end —
    /// the bounded-resident-memory claim.
    pub resident: u64,
    /// Total sealed archive-log bytes.
    pub archive_bytes: u64,
    /// Arbitrable txns whose evidence did not survive eviction +
    /// re-hydration (must be 0: eviction moves evidence, never loses it).
    pub evidence_loss: u64,
    /// Transactions whose retry budget was exhausted.
    pub gave_up: u64,
    /// Workers in the pool that drove the lanes (calling thread included).
    pub workers: u64,
    /// The host's advertised core count — recorded so bench trajectories
    /// stay comparable across machines.
    pub available_parallelism: u64,
    /// Steal operations during the lane fan-out (timing-dependent).
    pub steals: u64,
    /// Stealable tasks the lane range was split into (deterministic for a
    /// given worker count).
    pub tasks: u64,
}

/// Clients per E10 simulation lane (also the shared principal-pool size).
const E10_LANE: usize = 256;

/// Per-lane driver: start one upload per client, settle, then audit every
/// evicted transaction's archived evidence. Returns the lane's tallies.
fn e10_run_lane(w: &mut tpnr_core::multi::MultiWorld) -> E10LaneStats {
    // Keep the resident settled set small so eviction engages at every
    // lane size (16 shards × 8 = 128 hot txns per lane).
    w.set_archive_capacity(8);
    let n_c = w.clients.len();
    let mut handles = Vec::with_capacity(n_c);
    for i in 0..n_c {
        let key = format!("u{i}").into_bytes();
        handles.push(w.start_upload(
            i,
            &key,
            vec![(i % 251) as u8; 64],
            TimeoutStrategy::ResolveImmediately,
        ));
    }
    let s = w.settle();
    let quiescent = s.outcome == tpnr_core::sched::SettleOutcome::Quiescent;

    let mut completed = 0u64;
    let mut evidence_loss = 0u64;
    for &h in &handles {
        let st = w.state_of(h);
        if st == Some(TxnState::Completed) {
            completed += 1;
        }
        let arbitrable = st.is_some_and(|st| st.is_terminal());
        if !arbitrable {
            continue;
        }
        if w.clients[h.client].txn(h.txn_id).is_some() {
            continue; // still resident; evidence lives in the client record
        }
        // Evicted: the archived bundle must re-hydrate with the client's
        // NRO (and, for completed txns, the NRR receipt) intact.
        let ok = w.rehydrate_evidence(h.txn_id).is_some_and(|b| {
            b.structurally_sound()
                && b.get("client-nro").is_some()
                && (st != Some(TxnState::Completed) || b.get("client-nrr").is_some())
        });
        if !ok {
            evidence_loss += 1;
        }
    }

    let net = &w.net().stats;
    let conservation_ok = net.delivered + net.dropped == net.sent + net.duplicated;
    let a = w.archive_stats();
    E10LaneStats {
        completed,
        evidence_loss,
        violation: u64::from(!conservation_ok || !quiescent),
        sent: net.sent,
        delivered: net.delivered,
        dropped: net.dropped,
        duplicated: net.duplicated,
        evicted: a.evicted,
        rehydrated: a.rehydrated,
        resident: w.resident_txns() as u64,
        archive_bytes: a.log_bytes,
        gave_up: w.fault_counters().gave_up,
        latency: w.obs.metrics.latency_us.clone(),
    }
}

struct E10LaneStats {
    completed: u64,
    evidence_loss: u64,
    violation: u64,
    sent: u64,
    delivered: u64,
    dropped: u64,
    duplicated: u64,
    evicted: u64,
    rehydrated: u64,
    resident: u64,
    archive_bytes: u64,
    gave_up: u64,
    latency: tpnr_core::obs::Histogram,
}

/// Deterministic 64-bit mixer (splitmix64 finalizer) for per-client
/// latency jitter: pure in its input, so the drawn latencies depend only
/// on `(seed, global client index)` — never on lane scheduling.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Gives every client in a lane a distinct deterministic one-way latency
/// to the provider (5–45 ms, drawn from the seed and the client's *global*
/// index). Without this every E10 settle latency was the same constant
/// default-link round trip and p50 == p99 degenerately.
fn e10_apply_latency_jitter(w: &mut tpnr_core::multi::MultiWorld, seed: u64, first_global: usize) {
    for i in 0..w.clients.len() {
        let r = splitmix64(seed ^ 0xE10_1A7E ^ (first_global + i) as u64);
        let one_way = SimDuration::from_micros(5_000 + r % 40_001);
        w.set_client_provider_link(i, LinkConfig::ideal(one_way));
    }
}

/// E10 on the process-wide work-stealing pool ([`tpnr_par::Pool::global`]).
pub fn e10_scale(client_counts: &[usize], seed: u64) -> Vec<E10Row> {
    e10_scale_on(tpnr_par::Pool::global(), client_counts, seed)
}

/// E10: timer-wheel + sharded-state scale sweep. Each client count is split
/// into lanes of [`E10_LANE`] clients; lanes are independent `MultiWorld`s
/// (own simulator, shared principal pool — RSA keygen is the scale wall, so
/// one pool of keys serves every lane). The lane range is one work-stealing
/// fan-out on `pool`: lanes are built, run, and dropped *inside* their
/// task, so resident memory stays at one world per active worker, a slow
/// lane strands only its own worker, and the pool's persistent threads are
/// reused across rows (no spawn/join per batch). Reports throughput,
/// settle-latency quantiles, archive behaviour, the delivery conservation
/// law, and the fan-out's steal/task counters. E13 sweeps worker counts by
/// calling this with differently sized pools.
pub fn e10_scale_on(pool: &tpnr_par::Pool, client_counts: &[usize], seed: u64) -> Vec<E10Row> {
    use std::sync::Arc;
    use tpnr_core::multi::MultiWorld;
    use tpnr_core::principal::Principal;

    let bob = Arc::new(Principal::test("bob", seed.wrapping_mul(11).wrapping_add(1)));
    let ttp = Arc::new(Principal::test("ttp", seed.wrapping_mul(11).wrapping_add(2)));
    let pool_n = client_counts.iter().copied().max().unwrap_or(0).min(E10_LANE);
    let principals: Arc<Vec<Principal>> = Arc::new(pool.scoped_indexed(pool_n, |i| {
        Principal::test(&format!("client-{i}"), seed.wrapping_mul(11) + 10 + i as u64)
    }));

    client_counts
        .iter()
        .map(|&n| {
            assert!(n > 0);
            let lanes_n = n.div_ceil(E10_LANE);
            let sw = HostStopwatch::start();
            let (stats, fan) = {
                let principals = Arc::clone(&principals);
                let bob = Arc::clone(&bob);
                let ttp = Arc::clone(&ttp);
                pool.run_indexed_stats(lanes_n, move |l| {
                    let c = (n - l * E10_LANE).min(E10_LANE);
                    let mut w = MultiWorld::with_principals(
                        seed.wrapping_add(l as u64),
                        ProtocolConfig::full(),
                        &principals[..c],
                        &bob,
                        &ttp,
                    );
                    e10_apply_latency_jitter(&mut w, seed, l * E10_LANE);
                    e10_run_lane(&mut w)
                })
            };
            let mut sum = [0u64; 12];
            let mut latency = tpnr_core::obs::Histogram::default();
            for st in &stats {
                for (a, v) in sum.iter_mut().zip([
                    st.completed,
                    st.evidence_loss,
                    st.violation,
                    st.sent,
                    st.delivered,
                    st.dropped,
                    st.duplicated,
                    st.evicted,
                    st.rehydrated,
                    st.resident,
                    st.archive_bytes,
                    st.gave_up,
                ]) {
                    *a += v;
                }
                latency.merge(&st.latency);
            }
            let elapsed = sw.elapsed_secs_f64();
            E10Row {
                clients: n as u64,
                lanes: lanes_n as u64,
                completed: sum[0],
                elapsed_ms: (elapsed * 1000.0) as u64,
                txn_per_sec: (n as f64 / elapsed.max(1e-9)) as u64,
                p50_us: latency.quantile(0.5).unwrap_or(0),
                p99_us: latency.quantile(0.99).unwrap_or(0),
                bytes_per_client: sum[10] / n as u64,
                sent: sum[3],
                delivered: sum[4],
                dropped: sum[5],
                duplicated: sum[6],
                conservation_violations: sum[2],
                evicted: sum[7],
                rehydrated: sum[8],
                resident: sum[9],
                archive_bytes: sum[10],
                evidence_loss: sum[1],
                gave_up: sum[11],
                workers: pool.workers() as u64,
                available_parallelism: tpnr_par::available_parallelism() as u64,
                steals: fan.steals,
                tasks: fan.tasks,
            }
        })
        .collect()
}

// --------------------------------------------------------------- E12 ----

/// One row of the E12 RSA-kernel sweep: sign/verify microseconds for one
/// key size × hash algorithm, measured on the fixed-limb windowed path and
/// on the retained pre-optimization classic path **interleaved in one run**
/// (so the ratio survives host noise even on a loaded single-core VM), plus
/// heap-allocation tallies per signing operation on each path.
#[derive(Debug, Clone)]
pub struct E12Row {
    /// RSA modulus width in bits.
    pub bits: u64,
    /// Digest algorithm of the signed prehash.
    pub alg: &'static str,
    /// Mean classic-path (square-and-multiply, Vec-backed) sign time, µs.
    pub sign_classic_us: u64,
    /// Mean fixed-limb windowed sign time, µs.
    pub sign_fast_us: u64,
    /// `sign_classic_us / sign_fast_us`, ×100 (integer-JSON friendly).
    pub sign_speedup_x100: u64,
    /// Mean classic-path verify time, µs.
    pub verify_classic_us: u64,
    /// Mean fixed-limb verify time, µs.
    pub verify_fast_us: u64,
    /// `BigUint` limb-vector allocations per classic sign.
    pub allocs_per_sign_classic: u64,
    /// `BigUint` limb-vector allocations per fixed-limb sign (the modular
    /// exponentiation core allocates nothing; what remains is EMSA padding
    /// and the CRT recombination glue).
    pub allocs_per_sign_fast: u64,
    /// Fast sign under the recorded per-width floor (noise-margined): the
    /// CI regression gate.
    pub sign_floor_ok: bool,
}

/// The E12 batch-verification amortization row: `n` (digest, signature)
/// pairs under one key, one randomized-linear-combination pass vs `n`
/// serial verifications.
#[derive(Debug, Clone)]
pub struct E12Batch {
    /// RSA modulus width in bits.
    pub bits: u64,
    /// Batch size.
    pub n: u64,
    /// Total serial verification time for the batch, µs.
    pub serial_us: u64,
    /// One `verify_batch` call over the same items, µs.
    pub batch_us: u64,
    /// `serial_us / batch_us`, ×100.
    pub amortization_x100: u64,
    /// Batch no slower than serial: the CI gate.
    pub batch_not_slower: bool,
    /// A tampered signature hidden in the batch was caught and attributed
    /// to the right index (soundness spot-check inside the bench run).
    pub tampered_attributed: bool,
}

/// Recorded fast-path signing floors (µs) per modulus width, with ~3×
/// headroom over the 2026-08 measurement on the reference 1-core 2.1 GHz
/// KVM host (see EXPERIMENTS.md E12). CI fails the smoke run if a signing
/// regression blows through the margin.
const E12_SIGN_FLOOR_US: &[(u64, u64)] = &[(512, 700), (1024, 3600), (2048, 22000)];

fn e12_sign_floor(bits: u64) -> u64 {
    E12_SIGN_FLOOR_US.iter().find(|(b, _)| *b == bits).map(|(_, f)| *f).unwrap_or(u64::MAX)
}

/// Per-(key size × alg) kernel comparison. `iters` timing rounds per path,
/// interleaved classic/fast within each round.
fn e12_kernel_row(kp: &tpnr_crypto::RsaKeyPair, bits: u64, alg: HashAlg, iters: usize) -> E12Row {
    use tpnr_crypto::bigint::limb_allocs;

    let alg_name = match alg {
        HashAlg::Md5 => "md5",
        HashAlg::Sha1 => "sha1",
        HashAlg::Sha256 => "sha256",
        HashAlg::Sha512 => "sha512",
    };
    let digests: Vec<Vec<u8>> =
        (0..iters as u64).map(|i| alg.hash(&(i ^ bits).to_be_bytes())).collect();

    let (mut t_sc, mut t_sf, mut t_vc, mut t_vf) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for d in &digests {
        // Interleave the two paths inside each round: CPU-frequency drift
        // and scheduler noise then hit both paths alike, keeping the ratio
        // meaningful even when absolute numbers wobble.
        let sw = HostStopwatch::start();
        let sig_c = kp.private.sign_prehashed_reference(alg, d).expect("sign");
        t_sc += sw.elapsed_secs_f64();
        let sw = HostStopwatch::start();
        let sig_f = kp.private.sign_prehashed(alg, d).expect("sign");
        t_sf += sw.elapsed_secs_f64();
        assert_eq!(sig_c, sig_f, "kernel divergence: signatures must be byte-identical");
        let sw = HostStopwatch::start();
        kp.public.verify_prehashed_reference(alg, d, &sig_c).expect("verify");
        t_vc += sw.elapsed_secs_f64();
        let sw = HostStopwatch::start();
        kp.public.verify_prehashed(alg, d, &sig_f).expect("verify");
        t_vf += sw.elapsed_secs_f64();
    }
    let us = |total: f64| (total / iters as f64 * 1e6) as u64;

    // Allocation tallies: one sign per path under the thread-local counter.
    let d0 = &digests[0];
    limb_allocs::reset();
    let _ = kp.private.sign_prehashed_reference(alg, d0);
    let allocs_classic = limb_allocs::count();
    limb_allocs::reset();
    let _ = kp.private.sign_prehashed(alg, d0);
    let allocs_fast = limb_allocs::count();

    let sign_fast_us = us(t_sf).max(1);
    E12Row {
        bits,
        alg: alg_name,
        sign_classic_us: us(t_sc),
        sign_fast_us,
        sign_speedup_x100: (t_sc / t_sf * 100.0) as u64,
        verify_classic_us: us(t_vc),
        verify_fast_us: us(t_vf),
        allocs_per_sign_classic: allocs_classic,
        allocs_per_sign_fast: allocs_fast,
        sign_floor_ok: sign_fast_us <= e12_sign_floor(bits),
    }
}

/// Batch-vs-serial verification amortization at one key size.
fn e12_batch_row(kp: &tpnr_crypto::RsaKeyPair, bits: u64, n: usize, rounds: usize) -> E12Batch {
    use tpnr_crypto::rsa::BatchItem;

    let alg = HashAlg::Sha256;
    let digests: Vec<Vec<u8>> = (0..n as u64).map(|i| alg.hash(&i.to_be_bytes())).collect();
    let sigs: Vec<Vec<u8>> =
        digests.iter().map(|d| kp.private.sign_prehashed(alg, d).expect("sign")).collect();
    let items: Vec<BatchItem<'_>> = digests
        .iter()
        .zip(&sigs)
        .map(|(d, s)| BatchItem { alg, digest: d, signature: s })
        .collect();

    let mut rng = tpnr_crypto::ChaChaRng::seed_from_u64(0xe12);
    let (mut t_serial, mut t_batch) = (0.0f64, 0.0f64);
    for _ in 0..rounds {
        let sw = HostStopwatch::start();
        for (d, s) in digests.iter().zip(&sigs) {
            kp.public.verify_prehashed(alg, d, s).expect("verify");
        }
        t_serial += sw.elapsed_secs_f64();
        let sw = HostStopwatch::start();
        kp.public.verify_batch(&items, &mut rng).expect("batch verify");
        t_batch += sw.elapsed_secs_f64();
    }

    // Soundness spot-check inside the bench: a tampered member is caught
    // and attributed.
    let tamper_at = n / 2;
    let mut bad_sigs = sigs.clone();
    bad_sigs[tamper_at][5] ^= 1;
    let bad_items: Vec<BatchItem<'_>> = digests
        .iter()
        .zip(&bad_sigs)
        .map(|(d, s)| BatchItem { alg, digest: d, signature: s })
        .collect();
    let tampered_attributed =
        kp.public.verify_batch(&bad_items, &mut rng).err().is_some_and(|e| e.index == tamper_at);

    let us = |total: f64| (total / rounds as f64 * 1e6) as u64;
    let batch_us = us(t_batch).max(1);
    E12Batch {
        bits,
        n: n as u64,
        serial_us: us(t_serial),
        batch_us,
        amortization_x100: (t_serial / t_batch * 100.0) as u64,
        batch_not_slower: t_batch <= t_serial,
        tampered_attributed,
    }
}

/// E12: hardware-speed RSA sweep. For each modulus width, generates one
/// keypair and reports (a) sign/verify µs per hash algorithm on the
/// fixed-limb windowed kernels vs the retained classic path, measured
/// interleaved; (b) allocations per sign on both paths; (c) batch-vs-serial
/// verification amortization at `n = 64` under one key. Deterministic in
/// everything but the host timings.
pub fn e12_rsa_kernels(bit_sizes: &[usize], quick: bool) -> (Vec<E12Row>, Vec<E12Batch>) {
    let mut rows = Vec::new();
    let mut batches = Vec::new();
    for &bits in bit_sizes {
        let mut rng = tpnr_crypto::ChaChaRng::seed_from_u64(0x5250_4b45 ^ bits as u64);
        let kp = tpnr_crypto::RsaKeyPair::generate(bits, &mut rng);
        // Enough rounds that the per-op mean is stable, scaled down for the
        // slower widths and for the CI smoke run.
        let iters = match (bits, quick) {
            (_, true) => 6,
            (512, _) => 48,
            (1024, _) => 20,
            _ => 8,
        };
        for alg in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256] {
            rows.push(e12_kernel_row(&kp, bits as u64, alg, iters));
        }
        let rounds = if quick { 2 } else { 8 };
        batches.push(e12_batch_row(&kp, bits as u64, 64, rounds));
    }
    (rows, batches)
}

// --------------------------------------------------------------- E13 ----

/// One row of the E13 worker-count sweep: the E10 scenario at a fixed
/// client load, driven by a [`tpnr_par::Pool`] of `workers` workers. The
/// perf gates (`scaling_ok`) and the scheduling-invariance gate
/// (`deterministic_vs_serial`) are computed by the measurement code
/// itself, E12-style, so CI greps for `false`.
#[derive(Debug, Clone)]
pub struct E13Row {
    /// Simulated clients (identical in every row of a sweep).
    pub clients: u64,
    /// Simulation lanes the load was split into.
    pub lanes: u64,
    /// Configured pool workers for this row.
    pub workers: u64,
    /// The host's advertised core count. Speedup expectations scale with
    /// `min(workers, available_parallelism)`, so rows stay honest on
    /// small hosts (a 1-core box cannot show parallel speedup, only
    /// bounded overhead).
    pub available_parallelism: u64,
    /// Transactions completed with full evidence.
    pub completed: u64,
    /// Host wall-clock, in milliseconds.
    pub elapsed_ms: u64,
    /// Settled transactions per host-second.
    pub txn_per_sec: u64,
    /// Throughput relative to this sweep's `workers == 1` row, ×100.
    pub speedup_x100: u64,
    /// Parallel efficiency: speedup ÷ effective cores, ×100.
    pub efficiency_x100: u64,
    /// The floor `speedup_x100` must clear for this row's effective core
    /// count (recorded so the gate is auditable from the JSONL alone).
    pub required_speedup_x100: u64,
    /// `speedup_x100 >= required_speedup_x100`.
    pub scaling_ok: bool,
    /// Steal operations during the lane fan-out (timing-dependent).
    pub steals: u64,
    /// Stealable tasks the lane range was split into.
    pub tasks: u64,
    /// Median settle latency (sim-time µs).
    pub p50_us: u64,
    /// 99th-percentile settle latency (sim-time µs).
    pub p99_us: u64,
    /// Lanes violating the delivery conservation law (must be 0).
    pub conservation_violations: u64,
    /// Evidence lost across eviction + re-hydration (must be 0).
    pub evidence_loss: u64,
    /// Non-timing output byte-identical to the `workers == 1` row — the
    /// work-stealing determinism claim, checked on every row.
    pub deterministic_vs_serial: bool,
}

/// The E10 fields that must be byte-identical however the fan-out is
/// scheduled: everything except host timing (`elapsed_ms`, `txn_per_sec`)
/// and the scheduler counters (`workers`, `steals`, `tasks`).
fn e10_non_timing_fingerprint(r: &E10Row) -> String {
    format!(
        "{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}|{}",
        r.clients,
        r.lanes,
        r.completed,
        r.p50_us,
        r.p99_us,
        r.bytes_per_client,
        r.sent,
        r.delivered,
        r.dropped,
        r.duplicated,
        r.conservation_violations,
        r.evicted,
        r.rehydrated,
        r.resident,
        r.archive_bytes,
        r.evidence_loss,
        r.gave_up,
    )
}

/// Speedup floor (×100) by effective core count. One effective core can
/// only bound scheduling overhead (≥ 0.6× serial); real cores must show
/// real speedup, up to the tentpole's ≥ 3× target at 8+ cores. The floors
/// are deliberately below ideal scaling — they fail on regressions, not on
/// scheduler noise.
fn e13_required_speedup_x100(effective_cores: u64) -> u64 {
    match effective_cores {
        0 | 1 => 60,
        2 => 140,
        3..=4 => 200,
        _ => 300,
    }
}

/// E13: work-stealing scaling sweep. Runs the E10 scenario at one fixed
/// client load on pools of 1, 2, 4, 8 (and the host's core count, when
/// that differs) workers, and reports throughput, speedup over the
/// serial row, parallel efficiency, steal counts, latency percentiles —
/// and whether the non-timing output stayed byte-identical to serial
/// (the determinism argument for the stealing scheduler).
pub fn e13_worker_sweep(clients: usize, seed: u64) -> Vec<E13Row> {
    let host = tpnr_par::available_parallelism();
    let mut ladder: Vec<usize> = vec![1, 2, 4, 8];
    if !ladder.contains(&host) {
        ladder.push(host);
    }
    ladder.sort_unstable();

    let mut out = Vec::with_capacity(ladder.len());
    let mut baseline: Option<(u64, String)> = None; // workers == 1 row
    for &wk in &ladder {
        let pool = tpnr_par::Pool::new(wk);
        let rows = e10_scale_on(&pool, &[clients], seed);
        let r = &rows[0];
        let fp = e10_non_timing_fingerprint(r);
        let (base_tps, base_fp) = match &baseline {
            Some((t, f)) => (*t, f.clone()),
            None => {
                baseline = Some((r.txn_per_sec, fp.clone()));
                (r.txn_per_sec, fp.clone())
            }
        };
        let speedup_x100 = r.txn_per_sec.saturating_mul(100) / base_tps.max(1);
        let effective = (wk.min(host)) as u64;
        let required = e13_required_speedup_x100(effective);
        out.push(E13Row {
            clients: r.clients,
            lanes: r.lanes,
            workers: wk as u64,
            available_parallelism: host as u64,
            completed: r.completed,
            elapsed_ms: r.elapsed_ms,
            txn_per_sec: r.txn_per_sec,
            speedup_x100,
            efficiency_x100: speedup_x100 / effective.max(1),
            required_speedup_x100: required,
            scaling_ok: speedup_x100 >= required,
            steals: r.steals,
            tasks: r.tasks,
            p50_us: r.p50_us,
            p99_us: r.p99_us,
            conservation_violations: r.conservation_violations,
            evidence_loss: r.evidence_loss,
            deterministic_vs_serial: fp == base_fp,
        });
    }
    out
}

// --------------------------------------------------------------- E14 ----

/// One row of the E14 transport comparison: the same protocol workload —
/// a sustained run of evidence transactions plus the five §5 attack
/// probes — executed on one [`Transport`] backend. The gates
/// (`conservation_violations`, `evidence_loss`, `attacks_ok`) are
/// computed by the measurement code itself, E12/E13-style, so CI greps
/// the JSONL export directly.
#[derive(Debug, Clone)]
pub struct E14Row {
    /// Backend name: "simnet", "channel" or "tcp".
    pub backend: &'static str,
    /// Evidence transactions attempted in the throughput lane.
    pub txns: u64,
    /// Transactions that completed in Normal mode.
    pub completed: u64,
    /// Host wall-clock for the throughput lane, in milliseconds.
    pub elapsed_ms: u64,
    /// Wire messages delivered per host-second.
    pub msgs_per_sec: u64,
    /// Evidence transactions settled per host-second.
    pub txn_per_sec: u64,
    /// `txn_per_sec` normalised by the host's advertised core count. The
    /// lane itself is single-threaded; the normalisation only makes rows
    /// from different hosts comparable.
    pub txn_per_sec_per_core: u64,
    /// The host's advertised core count.
    pub available_parallelism: u64,
    /// Backend counter: message copies sent.
    pub sent: u64,
    /// Backend counter: copies delivered.
    pub delivered: u64,
    /// Backend counter: copies dropped (counted, never vanished).
    pub dropped: u64,
    /// Backend counter: copies duplicated on the wire.
    pub duplicated: u64,
    /// Rows violating `delivered + dropped == sent + duplicated`
    /// (must be 0).
    pub conservation_violations: u64,
    /// Transactions that finished without both NRO and NRR (must be 0 on
    /// a healthy wire).
    pub evidence_loss: u64,
    /// §5 attack probes the backend rejected.
    pub attacks_rejected: u64,
    /// §5 attack probes run (5: MITM, reflection, interleaving, replay,
    /// timeliness).
    pub attacks_expected: u64,
    /// `attacks_rejected == attacks_expected`.
    pub attacks_ok: bool,
    /// True when the backend could not be brought up (e.g. loopback bind
    /// refused in a sandbox) and the row carries no measurements.
    pub skipped: bool,
}

/// Protocol timers short enough for real-wire runs: on a live socket the
/// scheduler actually waits out timer deadlines in host time, so the
/// default 30 s response timeout would cost 30 wall-seconds per faulted
/// probe. 400 ms is still orders of magnitude above loopback RTT.
fn e14_cfg() -> ProtocolConfig {
    ProtocolConfig::builder().response_timeout(SimDuration::from_millis(400)).build()
}

/// §5.1 MITM probe: flip a byte of the first client→provider transfer in
/// flight. Blocked when the session cannot complete on the tampered
/// message (the provider refuses the broken signature and the client's
/// abort sub-protocol settles the session instead).
fn e14_attack_mitm_tamper<T: Transport>(net: T, seed: u64) -> bool {
    let mut w = GenericWorld::with_transport(net, seed, e14_cfg());
    let (a, b) = (w.alice_node, w.bob_node);
    let mut tampered = false;
    w.net_mut().set_interceptor(Box::new(move |src, dst, payload: &[u8], _t| {
        if !tampered && src == a && dst == b {
            tampered = true;
            let mut p = payload.to_vec();
            if let Some(last) = p.last_mut() {
                *last ^= 0xff;
            }
            return Action::Modify(p);
        }
        Action::Deliver
    }));
    let r = w.upload(b"e14/mitm", b"true data".to_vec(), TimeoutStrategy::AbortFirst);
    !r.completed()
}

/// §5.2 reflection probe: wiretap the client's own signed transfer, then
/// bounce it straight back at her as if the provider had sent it. Blocked
/// when the client refuses the echo (wrong direction, wrong signer role)
/// rather than treating it as a receipt.
fn e14_attack_reflection<T: Transport>(net: T, seed: u64) -> bool {
    let mut w = GenericWorld::with_transport(net, seed, e14_cfg());
    let (a, b) = (w.alice_node, w.bob_node);
    let tape: Arc<Mutex<Vec<Vec<u8>>>> = Arc::default();
    let tap = tape.clone();
    w.net_mut().set_interceptor(Box::new(move |src, dst, payload: &[u8], _t| {
        if src == a && dst == b {
            tap.lock().unwrap().push(payload.to_vec());
        }
        Action::Deliver
    }));
    let r = w.upload(b"e14/reflect", b"data".to_vec(), TimeoutStrategy::AbortFirst);
    if !r.completed() {
        return false; // clean run must succeed before the echo means anything
    }
    w.net_mut().clear_interceptor();
    let captured = tape.lock().unwrap()[0].clone();
    let before = w.obs.metrics.rejected + w.obs.metrics.garbled;
    w.net_mut().send_tagged(b, a, Bytes::from(captured), None);
    w.settle();
    w.obs.metrics.rejected + w.obs.metrics.garbled > before
}

/// §5.3 interleaving probe: run two sessions over the same object, cut
/// the provider→client path in session 2 and splice in session 1's
/// captured receipt. Blocked when the splice cannot complete session 2
/// (the signed plaintext binds the transaction id).
fn e14_attack_interleave<T: Transport>(net: T, seed: u64) -> bool {
    let mut w = GenericWorld::with_transport(net, seed, e14_cfg());
    let (a, b) = (w.alice_node, w.bob_node);
    let tape: Arc<Mutex<Vec<Vec<u8>>>> = Arc::default();
    let tap = tape.clone();
    w.net_mut().set_interceptor(Box::new(move |src, dst, payload: &[u8], _t| {
        if src == b && dst == a {
            tap.lock().unwrap().push(payload.to_vec());
        }
        Action::Deliver
    }));
    let r1 = w.upload(b"same-object", b"same bytes".to_vec(), TimeoutStrategy::AbortFirst);
    if !r1.completed() {
        return false;
    }
    let receipt1 = match Message::from_wire_bytes(&Bytes::from(tape.lock().unwrap()[0].clone())) {
        Ok(m) => m,
        Err(_) => return false,
    };
    // Session 2: identical object and bytes, new transaction. The
    // attacker suppresses Bob's real receipt and answers with session 1's.
    w.net_mut().clear_interceptor();
    w.net_mut().set_interceptor(Box::new(move |src, dst, _payload: &[u8], _t| {
        if src == b && dst == a {
            Action::Drop
        } else {
            Action::Deliver
        }
    }));
    let now = w.net().now();
    let Ok((txn2, out)) = w.client.begin_upload(
        b"same-object",
        b"same bytes".to_vec(),
        now,
        TimeoutStrategy::AbortFirst,
    ) else {
        return false;
    };
    w.send_from_client(out);
    let bob_id = w.provider.id();
    let splice = w.client.handle(bob_id, &receipt1, now);
    let spliced_in = splice.is_ok() && w.client.txn_state(txn2) == Some(TxnState::Completed);
    w.settle(); // drain session 2 to a terminal state over the cut wire
    !spliced_in
}

/// §5.4 replay probe: capture the client's transfer, let the session
/// complete, then resend the identical bytes. Blocked when the
/// per-(txn, sender) replay window refuses the stale sequence number.
fn e14_attack_replay<T: Transport>(net: T, seed: u64) -> bool {
    let mut w = GenericWorld::with_transport(net, seed, e14_cfg());
    let (a, b) = (w.alice_node, w.bob_node);
    let tape: Arc<Mutex<Vec<Vec<u8>>>> = Arc::default();
    let tap = tape.clone();
    w.net_mut().set_interceptor(Box::new(move |src, dst, payload: &[u8], _t| {
        if src == a && dst == b {
            tap.lock().unwrap().push(payload.to_vec());
        }
        Action::Deliver
    }));
    let r = w.upload(b"e14/replay", b"data".to_vec(), TimeoutStrategy::AbortFirst);
    if !r.completed() {
        return false;
    }
    w.net_mut().clear_interceptor();
    let replay = tape.lock().unwrap()[0].clone();
    w.net_mut().send_tagged(a, b, Bytes::from(replay), None);
    w.settle();
    w.obs.metrics.rejected_by.get("stale-sequence").copied().unwrap_or(0) >= 1
}

/// §5.5 timeliness probe: hold the provider's receipt on the wire past
/// the evidence time limit. Blocked when the stale receipt is refused as
/// expired and the session settles through the abort path instead of
/// completing on out-of-date evidence.
fn e14_attack_timeliness<T: Transport>(net: T, seed: u64) -> bool {
    let cfg = ProtocolConfig::builder()
        .response_timeout(SimDuration::from_millis(500))
        .message_time_limit(SimDuration::from_millis(150))
        .build();
    let mut w = GenericWorld::with_transport(net, seed, cfg);
    let (a, b) = (w.alice_node, w.bob_node);
    let mut delayed = false;
    w.net_mut().set_interceptor(Box::new(move |src, dst, _payload: &[u8], _t| {
        if !delayed && src == b && dst == a {
            delayed = true;
            return Action::Delay(SimDuration::from_millis(300));
        }
        Action::Deliver
    }));
    let r = w.upload(b"e14/late", b"data".to_vec(), TimeoutStrategy::AbortFirst);
    let expired = w.obs.metrics.rejected_by.get("expired").copied().unwrap_or(0);
    !r.completed() && expired >= 1
}

/// A row for a backend that could not be brought up.
fn e14_skipped(backend: &'static str, host: u64) -> E14Row {
    E14Row {
        backend,
        txns: 0,
        completed: 0,
        elapsed_ms: 0,
        msgs_per_sec: 0,
        txn_per_sec: 0,
        txn_per_sec_per_core: 0,
        available_parallelism: host,
        sent: 0,
        delivered: 0,
        dropped: 0,
        duplicated: 0,
        conservation_violations: 0,
        evidence_loss: 0,
        attacks_rejected: 0,
        attacks_expected: 0,
        attacks_ok: true,
        skipped: true,
    }
}

/// Runs the full E14 workload — throughput lane plus §5 gauntlet — on one
/// backend. `mk` constructs a fresh wire of that backend for the lane and
/// for every probe (returning `None` marks the row skipped, e.g. when the
/// loopback bind is refused).
fn e14_run_backend<T: Transport>(
    backend: &'static str,
    txns: usize,
    seed: u64,
    mk: &mut dyn FnMut() -> Option<T>,
) -> E14Row {
    let host = tpnr_par::available_parallelism() as u64;
    let Some(net) = mk() else {
        return e14_skipped(backend, host);
    };

    // Throughput lane: sequential evidence transactions on a healthy wire.
    let mut w = GenericWorld::with_transport(net, seed, e14_cfg());
    let payload = vec![0x5a_u8; 256];
    let sw = HostStopwatch::start();
    let mut completed = 0u64;
    let mut evidence_loss = 0u64;
    for i in 0..txns {
        let key = format!("e14/{i}");
        let r = w.upload(key.as_bytes(), payload.clone(), TimeoutStrategy::AbortFirst);
        if r.completed() {
            completed += 1;
        }
        if r.nro.is_none() || r.nrr.is_none() {
            evidence_loss += 1;
        }
    }
    let elapsed = sw.elapsed_secs_f64().max(1e-9);
    let s = w.net().stats();
    let conservation_violations = u64::from(s.delivered + s.dropped != s.sent + s.duplicated);

    // §5 gauntlet, each probe on a fresh wire of the same backend.
    let probes: [fn(T, u64) -> bool; 5] = [
        e14_attack_mitm_tamper::<T>,
        e14_attack_reflection::<T>,
        e14_attack_interleave::<T>,
        e14_attack_replay::<T>,
        e14_attack_timeliness::<T>,
    ];
    let attacks_expected = probes.len() as u64;
    let mut attacks_rejected = 0u64;
    for probe in probes {
        if let Some(net) = mk() {
            if probe(net, seed) {
                attacks_rejected += 1;
            }
        }
    }

    let txn_per_sec = (completed as f64 / elapsed) as u64;
    E14Row {
        backend,
        txns: txns as u64,
        completed,
        elapsed_ms: (elapsed * 1000.0) as u64,
        msgs_per_sec: (s.delivered as f64 / elapsed) as u64,
        txn_per_sec,
        txn_per_sec_per_core: txn_per_sec / host.max(1),
        available_parallelism: host,
        sent: s.sent,
        delivered: s.delivered,
        dropped: s.dropped,
        duplicated: s.duplicated,
        conservation_violations,
        evidence_loss,
        attacks_rejected,
        attacks_expected,
        attacks_ok: attacks_rejected == attacks_expected,
        skipped: false,
    }
}

/// E14: the same protocol code on every transport backend. Runs the
/// throughput lane and the five §5 attack probes on the deterministic
/// simulator, the in-process channel wire and real loopback TCP sockets,
/// at matched load, with zero per-backend protocol code. The TCP row is
/// marked `skipped` (rather than failing the experiment) when the host
/// refuses the loopback bind.
pub fn e14_backend_comparison(seed: u64, quick: bool) -> Vec<E14Row> {
    let txns = if quick { 40 } else { 400 };
    vec![
        e14_run_backend("simnet", txns, seed, &mut || Some(SimNet::new(seed))),
        e14_run_backend("channel", txns, seed, &mut || Some(ChannelNet::new())),
        e14_run_backend("tcp", txns, seed, &mut || TcpNet::new().ok()),
    ]
}

// ------------------------------------------------------------- trace ----

/// Runs a small faulted multi-client scenario and exports its complete
/// observability stream (events + metrics summary) as JSONL. Feeds
/// `experiments --trace-jsonl`; deterministic in `seed`.
pub fn trace_jsonl(seed: u64) -> String {
    use tpnr_core::multi::MultiWorld;

    let mut w = MultiWorld::new(seed, ProtocolConfig::full(), 8);
    w.set_all_links(LinkConfig {
        latency: SimDuration::from_millis(20),
        drop_prob: 0.2,
        dup_prob: 0.1,
        ..Default::default()
    });
    for i in 0..8 {
        let key = format!("user{i}/obj").into_bytes();
        w.start_upload(i, &key, vec![i as u8; 64], TimeoutStrategy::ResolveImmediately);
    }
    w.settle();
    crate::report::render_trace_jsonl(w.obs.events(), &w.obs.metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn e8_no_evidence_less_limbo_at_any_crash_probability() {
        let rows = e8_chaos(&[0, 300], 8);
        assert_eq!(rows.len(), 2);
        for r in &rows {
            assert_eq!(r.completed_full_evidence + r.arbitrable_terminal + r.limbo, r.trials);
            assert_eq!(r.limbo, 0, "p={}: evidence-less limbo", r.crash_prob_permille);
        }
        // No faults → no fault machinery engaged at all.
        assert_eq!(rows[0].crashes, 0);
        assert_eq!(rows[0].restarts, 0);
        assert_eq!(rows[0].trials, rows[0].completed_full_evidence);
        // Heavy chaos → crashes actually happen and recovery actually runs.
        assert!(rows[1].crashes > 0, "p=0.3 must inject crashes: {:?}", rows[1]);
        assert_eq!(rows[1].crashes, rows[1].restarts, "every crash restarts");
        assert!(rows[1].snapshot_bytes > 0, "restarts imply durable snapshots");
    }

    #[test]
    fn e8_is_deterministic() {
        let a = e8_chaos(&[200], 6);
        let b = e8_chaos(&[200], 6);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn e10_output_is_worker_count_invariant() {
        // The work-stealing determinism claim, end to end: the same load
        // on a 1-worker pool and a 4-worker pool (forced steal pressure on
        // any host) must produce byte-identical non-timing output. 520
        // clients → 3 lanes, one ragged.
        let serial = e10_scale_on(&tpnr_par::Pool::new(1), &[520], 7);
        let stolen = e10_scale_on(&tpnr_par::Pool::new(4), &[520], 7);
        assert_eq!(e10_non_timing_fingerprint(&serial[0]), e10_non_timing_fingerprint(&stolen[0]),);
        assert_eq!(serial[0].workers, 1);
        assert_eq!(stolen[0].workers, 4);
    }

    #[test]
    fn e10_latency_percentiles_are_not_degenerate() {
        // Per-client link jitter must spread the settle-latency
        // distribution: the old constant-link scenario had p50 == p99 ==
        // 50000 in every row.
        let rows = e10_scale(&[300], 7);
        let r = &rows[0];
        assert!(r.p50_us > 0 && r.p99_us > r.p50_us, "p50={} p99={}", r.p50_us, r.p99_us);
        assert_eq!(r.completed, r.clients, "jittered links still settle every txn");
        assert_eq!(r.conservation_violations, 0);
        assert_eq!(r.evidence_loss, 0);
    }

    #[test]
    fn e13_rows_are_deterministic_and_conservative() {
        let rows = e13_worker_sweep(300, 7);
        assert!(rows.len() >= 4, "ladder covers 1, 2, 4, 8 workers");
        assert_eq!(rows[0].workers, 1);
        assert_eq!(rows[0].speedup_x100, 100, "serial row is its own baseline");
        for r in &rows {
            assert_eq!(r.clients, 300);
            assert!(r.deterministic_vs_serial, "workers={}: output drifted", r.workers);
            assert_eq!(r.conservation_violations, 0);
            assert_eq!(r.evidence_loss, 0);
            assert!(r.tasks > 0);
            assert!(r.p99_us >= r.p50_us);
        }
        let ws: Vec<u64> = rows.iter().map(|r| r.workers).collect();
        let mut sorted = ws.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(ws, sorted, "ladder ascends without duplicates");
    }

    #[test]
    fn e1_shapes_match_the_paper() {
        let rows = e1_vulnerability_matrix(3);
        assert_eq!(rows.len(), 8); // (3 platforms + TPNR) × 2 tampers
                                   // Consistent tampering is never detected by any platform…
        for r in rows.iter().filter(|r| r.tamper == "consistent replace") {
            if r.system == "TPNR" {
                assert!(r.detected && r.attributable, "TPNR closes the gap");
            } else {
                assert!(!r.detected, "{} should miss consistent tamper", r.system);
                assert!(!r.attributable);
            }
        }
        // Naive tamper: only Azure's stored-MD5 lets the client notice.
        let naive: Vec<_> = rows.iter().filter(|r| r.tamper == "naive bit-flip").collect();
        for r in &naive {
            match r.system.as_str() {
                "Azure" | "TPNR" => assert!(r.detected, "{}", r.system),
                _ => assert!(!r.detected, "{}", r.system),
            }
            if r.system != "TPNR" {
                assert!(!r.attributable, "no platform can attribute fault");
            }
        }
    }

    #[test]
    fn e2_tpnr_always_wins() {
        let rows = e2_protocol_comparison(&[20, 100], &[1024]);
        for pair in rows.chunks(2) {
            let (tpnr, base) = (&pair[0], &pair[1]);
            assert_eq!(tpnr.protocol, "TPNR");
            assert_eq!(tpnr.messages, 2);
            assert!(base.messages >= 4);
            assert!(tpnr.latency_ms < base.latency_ms);
            assert!(!tpnr.ttp_used && base.ttp_used);
        }
    }

    #[test]
    fn e3_full_protocol_blocks_everything() {
        let rows = e3_attack_matrix();
        for r in rows.iter().filter(|r| r.ablation == tpnr_core::config::Ablation::None) {
            assert!(r.blocked, "{:?}: {}", r.attack, r.detail);
        }
        // And the toggleable defences are load-bearing.
        for r in &rows {
            if matches!(
                r.attack,
                tpnr_attacks::AttackKind::Mitm
                    | tpnr_attacks::AttackKind::Replay
                    | tpnr_attacks::AttackKind::Timeliness
            ) && r.ablation != tpnr_core::config::Ablation::None
            {
                assert!(!r.blocked, "{:?} vs {:?} should succeed", r.attack, r.ablation);
            }
        }
    }

    #[test]
    fn e4_memoizes_the_commit_and_never_copies_the_payload() {
        let rows = e4_evidence_cost(&[1 << 10], &[HashAlg::Md5, HashAlg::Sha256]);
        for r in &rows {
            // 10 reps × 2 parties over one shared object: one full hash
            // pass per party, everything else a lookup.
            assert_eq!((r.cache_misses, r.cache_hits), (2, 18), "{}", r.alg.name());
            assert_eq!(r.deep_copies, 0, "evidence loop must be copy-free");
            assert_eq!(r.deep_copy_bytes, 0);
        }
    }

    #[test]
    fn e4_transport_probe_reports_a_copy_free_upload() {
        assert_eq!(e4_transport_copies(1 << 16), (0, 0));
    }

    #[test]
    fn e5_overhead_is_trivial() {
        let rows = e5_shipping_overhead(&[24, 72, 120]);
        for r in &rows {
            assert!(
                r.overhead_fraction < 0.001,
                "protocol should be <0.1% of shipping time, got {}",
                r.overhead_fraction
            );
        }
    }

    #[test]
    fn e6_ttp_load_grows_with_faults_and_baseline_is_always_one() {
        let rows = e6_ttp_load(&[0.0, 0.5], 10);
        assert_eq!(rows[0].tpnr_ttp_fraction, 0.0, "no faults, no TTP");
        assert!(rows[1].tpnr_ttp_fraction > 0.0);
        assert!(rows.iter().all(|r| r.baseline_ttp_fraction == 1.0));
        assert!(rows.iter().all(|r| r.tpnr_completed_fraction == 1.0));
    }

    #[test]
    fn e7_matches_section3_analysis() {
        let rows = e7_bridge_schemes(11);
        let by = |k: SchemeKind| rows.iter().find(|r| r.scheme == k).unwrap().clone();
        assert!(by(SchemeKind::Plain).proves_alone);
        assert!(!by(SchemeKind::SksOnly).proves_alone);
        assert!(by(SchemeKind::SksOnly).proves_with_cooperation);
        assert!(!by(SchemeKind::SksOnly).attributable);
        assert!(by(SchemeKind::TacOnly).proves_alone);
        assert!(by(SchemeKind::TacAndSks).proves_alone);
    }
}
