//! Plain-text table rendering for the `experiments` binary, plus the JSONL
//! export of the observability stream (`experiments --trace-jsonl`).

use crate::experiments::*;
use tpnr_core::obs::{Event, EventKind, Histogram, Metrics};

fn human_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{} MiB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{} KiB", bytes >> 10)
    } else {
        format!("{bytes} B")
    }
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Renders E1 as a table.
pub fn render_e1(rows: &[E1Row]) -> String {
    let mut out = String::from(
        "E1 / Figure 5 — in-storage tamper: detection & attribution\n\
         system   tamper               detected  attributable\n\
         -------  -------------------  --------  ------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<20} {:<9} {}\n",
            r.system,
            r.tamper,
            yn(r.detected),
            yn(r.attributable)
        ));
    }
    out
}

/// Renders E2 as a table.
pub fn render_e2(rows: &[E2Row]) -> String {
    let mut out = String::from(
        "E2 / Figure 6 — TPNR vs traditional NR (messages / latency / TTP)\n\
         protocol        rtt(ms)  size      msgs  latency(ms)  ttp\n\
         --------------  -------  --------  ----  -----------  ---\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15} {:>7}  {:<9} {:>4}  {:>11.1}  {}\n",
            r.protocol,
            r.rtt_ms,
            human_size(r.size),
            r.messages,
            r.latency_ms,
            yn(r.ttp_used)
        ));
    }
    out
}

/// Renders E3 as a table.
pub fn render_e3(rows: &[tpnr_attacks::AttackOutcome]) -> String {
    let mut out = String::from(
        "E3 / §5 — attack matrix (attack × protocol variant)\n\
         attack              variant             blocked  note\n\
         ------------------  ------------------  -------  ----\n",
    );
    for r in rows {
        let note: String = r.detail.chars().take(60).collect();
        out.push_str(&format!(
            "{:<19} {:<19} {:<8} {}\n",
            r.attack.label(),
            r.ablation.label(),
            yn(r.blocked),
            note
        ));
    }
    out
}

/// Renders E4 as a table.
pub fn render_e4(rows: &[E4Row]) -> String {
    let mut out = String::from(
        "E4 — evidence generation/verification cost (memoized commit path)\n\
         size      hash      generate(us)  verify(us)  memo h/m  deep copies\n\
         --------  --------  ------------  ----------  --------  -----------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<9} {:>12.0}  {:>10.0}  {:>4}/{:<3}  {:>11}\n",
            human_size(r.size),
            r.alg.name(),
            r.generate_us,
            r.verify_us,
            r.cache_hits,
            r.cache_misses,
            r.deep_copies,
        ));
    }
    out
}

/// Renders the E4 sweep plus the transport copy probes as machine-readable
/// JSONL (one object per line, `validate_jsonl`-clean). Written to
/// `BENCH_e4.json` by `experiments --bench-e4`.
pub fn render_bench_e4_json(rows: &[E4Row], transport: &[(usize, u64, u64)]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "{{\"kind\":\"e4\",\"size\":{},\"alg\":\"{}\",\"generate_us\":{:.1},\
             \"verify_us\":{:.1},\"cache_hits\":{},\"cache_misses\":{},\
             \"deep_copies\":{},\"deep_copy_bytes\":{}}}\n",
            r.size,
            r.alg.name(),
            r.generate_us,
            r.verify_us,
            r.cache_hits,
            r.cache_misses,
            r.deep_copies,
            r.deep_copy_bytes,
        ));
    }
    for &(size, copies, bytes) in transport {
        out.push_str(&format!(
            "{{\"kind\":\"e4-transport\",\"size\":{size},\"upload_deep_copies\":{copies},\
             \"upload_deep_copy_bytes\":{bytes}}}\n",
        ));
    }
    out
}

/// Renders E5 as a table.
pub fn render_e5(rows: &[E5Row]) -> String {
    let mut out = String::from(
        "E5 / §6 — protocol time vs device shipping time\n\
         transit(h)  protocol(ms)  overhead fraction\n\
         ----------  ------------  -----------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>10}  {:>12.1}  {:>17.8}\n",
            r.transit_hours, r.protocol_ms, r.overhead_fraction
        ));
    }
    out
}

/// Renders E6 as a table.
pub fn render_e6(rows: &[E6Row]) -> String {
    let mut out = String::from(
        "E6 / §4.4 — TTP involvement vs fault rate\n\
         fault rate  TPNR ttp%  TPNR completed%  traditional ttp%\n\
         ----------  ---------  ---------------  ----------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>10.2}  {:>9.2}  {:>15.2}  {:>16.2}\n",
            r.fault_rate,
            r.tpnr_ttp_fraction * 100.0,
            r.tpnr_completed_fraction * 100.0,
            r.baseline_ttp_fraction * 100.0
        ));
    }
    out
}

/// Renders E7 as a table.
pub fn render_e7(rows: &[E7Row]) -> String {
    let mut out = String::from(
        "E7 / §3 — bridging schemes\n\
         scheme             msgs  user/provider/TAC bytes  coop-proof  solo-proof  attributable\n\
         -----------------  ----  -----------------------  ----------  ----------  ------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>4}  {:>6}/{:>6}/{:>6}      {:<11} {:<11} {}\n",
            r.scheme.label(),
            r.messages,
            r.records.0,
            r.records.1,
            r.records.2,
            yn(r.proves_with_cooperation),
            yn(r.proves_alone),
            yn(r.attributable)
        ));
    }
    out
}

/// Renders E8 as a table.
pub fn render_e8(rows: &[E8Row]) -> String {
    let mut out = String::from(
        "E8 / §4.11 — crash-recovery chaos sweep\n\
         crash p   trials  full-evid  arbitrable  limbo  crashes  restarts  retries  gave-up\n\
         --------  ------  ---------  ----------  -----  -------  --------  -------  -------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>8.2}  {:>6}  {:>9}  {:>10}  {:>5}  {:>7}  {:>8}  {:>7}  {:>7}\n",
            r.crash_prob_permille as f64 / 1000.0,
            r.trials,
            r.completed_full_evidence,
            r.arbitrable_terminal,
            r.limbo,
            r.crashes,
            r.restarts,
            r.retries,
            r.gave_up,
        ));
    }
    out
}

/// Renders the E8 chaos sweep as machine-readable JSONL (one object per
/// line, `validate_jsonl`-clean, all-integer fields so reruns are
/// byte-identical). Written to `BENCH_e8.json` by `experiments --bench-e8`.
pub fn render_bench_e8_json(rows: &[E8Row]) -> String {
    let mut out = String::new();
    for r in rows {
        let evidence_loss = r.limbo;
        out.push_str(&format!(
            "{{\"kind\":\"e8\",\"crash_prob_permille\":{},\"trials\":{},\
             \"completed_full_evidence\":{},\"arbitrable_terminal\":{},\
             \"limbo\":{},\"evidence_loss\":{},\"crashes\":{},\"restarts\":{},\
             \"retries\":{},\"gave_up\":{},\"snapshot_bytes\":{}}}\n",
            r.crash_prob_permille,
            r.trials,
            r.completed_full_evidence,
            r.arbitrable_terminal,
            r.limbo,
            evidence_loss,
            r.crashes,
            r.restarts,
            r.retries,
            r.gave_up,
            r.snapshot_bytes,
        ));
    }
    out
}

/// Renders E10 as a table.
pub fn render_e10(rows: &[E10Row]) -> String {
    let mut out = String::from(
        "E10 / §4.12 — timer-wheel + sharded-state scale sweep\n\
         clients  lanes  wrk  txn/s    p50 us  p99 us  B/client  evicted  resident  cons-viol  evid-loss\n\
         -------  -----  ---  -------  ------  ------  --------  -------  --------  ---------  ---------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>7}  {:>5}  {:>3}  {:>7}  {:>6}  {:>6}  {:>8}  {:>7}  {:>8}  {:>9}  {:>9}\n",
            r.clients,
            r.lanes,
            r.workers,
            r.txn_per_sec,
            r.p50_us,
            r.p99_us,
            r.bytes_per_client,
            r.evicted,
            r.resident,
            r.conservation_violations,
            r.evidence_loss,
        ));
    }
    out
}

/// Renders the E10 scale sweep as machine-readable JSONL (one object per
/// line, `validate_jsonl`-clean, all-integer fields). Written to
/// `BENCH_e10.json` by `experiments --bench-e10`. The host-timing pair
/// (`elapsed_ms`, `txn_per_sec`) and the `steals` counter are the only
/// non-deterministic content; everything else is byte-identical across
/// reruns of the same seed, whatever the worker count.
pub fn render_bench_e10_json(rows: &[E10Row]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "{{\"kind\":\"e10\",\"clients\":{},\"lanes\":{},\"completed\":{},\
             \"elapsed_ms\":{},\"txn_per_sec\":{},\"p50_us\":{},\"p99_us\":{},\
             \"bytes_per_client\":{},\"sent\":{},\"delivered\":{},\"dropped\":{},\
             \"duplicated\":{},\"conservation_violations\":{},\"evicted\":{},\
             \"rehydrated\":{},\"resident\":{},\"archive_bytes\":{},\
             \"evidence_loss\":{},\"gave_up\":{},\"workers\":{},\
             \"available_parallelism\":{},\"steals\":{},\"tasks\":{}}}\n",
            r.clients,
            r.lanes,
            r.completed,
            r.elapsed_ms,
            r.txn_per_sec,
            r.p50_us,
            r.p99_us,
            r.bytes_per_client,
            r.sent,
            r.delivered,
            r.dropped,
            r.duplicated,
            r.conservation_violations,
            r.evicted,
            r.rehydrated,
            r.resident,
            r.archive_bytes,
            r.evidence_loss,
            r.gave_up,
            r.workers,
            r.available_parallelism,
            r.steals,
            r.tasks,
        ));
    }
    out
}

/// Renders E13 as a table.
pub fn render_e13(rows: &[E13Row]) -> String {
    let mut out = String::from(
        "E13 / work-stealing settle: worker sweep at fixed load\n\
         workers  cores  txn/s    speedup  effic  steals  tasks  p50 us  p99 us  det  ok\n\
         -------  -----  -------  -------  -----  ------  -----  ------  ------  ---  --\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>7}  {:>5}  {:>7}  {:>4}.{:02}x  {:>2}.{:02}  {:>6}  {:>5}  {:>6}  {:>6}  {:>3}  {}\n",
            r.workers,
            r.available_parallelism,
            r.txn_per_sec,
            r.speedup_x100 / 100,
            r.speedup_x100 % 100,
            r.efficiency_x100 / 100,
            r.efficiency_x100 % 100,
            r.steals,
            r.tasks,
            r.p50_us,
            r.p99_us,
            if r.deterministic_vs_serial { "yes" } else { "NO" },
            if r.scaling_ok { "ok" } else { "FAIL" },
        ));
    }
    out
}

/// Renders the E13 worker sweep as machine-readable JSONL. Written to
/// `BENCH_e13.json` by `experiments --bench-e13`. The gate booleans
/// (`scaling_ok`, `deterministic_vs_serial`) are computed by the
/// measurement code itself — CI greps this export for `false`.
pub fn render_bench_e13_json(rows: &[E13Row]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "{{\"kind\":\"e13\",\"clients\":{},\"lanes\":{},\"workers\":{},\
             \"available_parallelism\":{},\"completed\":{},\"elapsed_ms\":{},\
             \"txn_per_sec\":{},\"speedup_x100\":{},\"efficiency_x100\":{},\
             \"required_speedup_x100\":{},\"scaling_ok\":{},\"steals\":{},\
             \"tasks\":{},\"p50_us\":{},\"p99_us\":{},\
             \"conservation_violations\":{},\"evidence_loss\":{},\
             \"deterministic_vs_serial\":{}}}\n",
            r.clients,
            r.lanes,
            r.workers,
            r.available_parallelism,
            r.completed,
            r.elapsed_ms,
            r.txn_per_sec,
            r.speedup_x100,
            r.efficiency_x100,
            r.required_speedup_x100,
            r.scaling_ok,
            r.steals,
            r.tasks,
            r.p50_us,
            r.p99_us,
            r.conservation_violations,
            r.evidence_loss,
            r.deterministic_vs_serial,
        ));
    }
    out
}

/// Renders E14 as a table.
pub fn render_e14(rows: &[E14Row]) -> String {
    let mut out = String::from(
        "E14 / transport comparison: same protocol code on every backend\n\
         backend  txns  completed  elapsed ms  msg/s    txn/s   txn/s/core  attacks  loss  ok\n\
         -------  ----  ---------  ----------  -------  ------  ----------  -------  ----  --\n",
    );
    for r in rows {
        if r.skipped {
            out.push_str(&format!(
                "{:<7}  (skipped: backend unavailable on this host)\n",
                r.backend
            ));
            continue;
        }
        out.push_str(&format!(
            "{:<7}  {:>4}  {:>9}  {:>10}  {:>7}  {:>6}  {:>10}  {:>4}/{}  {:>4}  {}\n",
            r.backend,
            r.txns,
            r.completed,
            r.elapsed_ms,
            r.msgs_per_sec,
            r.txn_per_sec,
            r.txn_per_sec_per_core,
            r.attacks_rejected,
            r.attacks_expected,
            r.evidence_loss,
            if r.attacks_ok && r.conservation_violations == 0 && r.evidence_loss == 0 {
                "ok"
            } else {
                "FAIL"
            },
        ));
    }
    out
}

/// Renders the E14 backend comparison as machine-readable JSONL (one
/// object per line, `validate_jsonl`-clean). Written to `BENCH_e14.json`
/// by `experiments --bench-e14`. The gates (`conservation_violations`,
/// `evidence_loss`, `attacks_ok`) are computed by the measurement code —
/// CI greps this export directly.
pub fn render_bench_e14_json(rows: &[E14Row]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "{{\"kind\":\"e14\",\"backend\":\"{}\",\"txns\":{},\"completed\":{},\
             \"elapsed_ms\":{},\"msgs_per_sec\":{},\"txn_per_sec\":{},\
             \"txn_per_sec_per_core\":{},\"available_parallelism\":{},\
             \"sent\":{},\"delivered\":{},\"dropped\":{},\"duplicated\":{},\
             \"conservation_violations\":{},\"evidence_loss\":{},\
             \"attacks_rejected\":{},\"attacks_expected\":{},\
             \"attacks_ok\":{},\"skipped\":{}}}\n",
            r.backend,
            r.txns,
            r.completed,
            r.elapsed_ms,
            r.msgs_per_sec,
            r.txn_per_sec,
            r.txn_per_sec_per_core,
            r.available_parallelism,
            r.sent,
            r.delivered,
            r.dropped,
            r.duplicated,
            r.conservation_violations,
            r.evidence_loss,
            r.attacks_rejected,
            r.attacks_expected,
            r.attacks_ok,
            r.skipped,
        ));
    }
    out
}

/// Renders E12 as tables (kernel sweep + batch amortization).
pub fn render_e12(rows: &[E12Row], batches: &[E12Batch]) -> String {
    let mut out = String::from(
        "E12 / §4.13 — fixed-limb RSA kernels: sign/verify by key size × alg\n\
         bits  alg     sign-classic us  sign-fast us  speedup  verify-c us  verify-f us  allocs c→f\n\
         ----  ------  ---------------  ------------  -------  -----------  -----------  ----------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>4}  {:<6}  {:>15}  {:>12}  {:>6}.{:02}x  {:>11}  {:>11}  {:>4}→{}\n",
            r.bits,
            r.alg,
            r.sign_classic_us,
            r.sign_fast_us,
            r.sign_speedup_x100 / 100,
            r.sign_speedup_x100 % 100,
            r.verify_classic_us,
            r.verify_fast_us,
            r.allocs_per_sign_classic,
            r.allocs_per_sign_fast,
        ));
    }
    out.push_str(
        "\nbatch verification, n pairs under one key\n\
         bits   n  serial us  batch us  amortization  attributed\n\
         ----  --  ---------  --------  ------------  ----------\n",
    );
    for b in batches {
        out.push_str(&format!(
            "{:>4}  {:>2}  {:>9}  {:>8}  {:>10}.{:02}x  {:>10}\n",
            b.bits,
            b.n,
            b.serial_us,
            b.batch_us,
            b.amortization_x100 / 100,
            b.amortization_x100 % 100,
            if b.tampered_attributed { "yes" } else { "NO" },
        ));
    }
    out
}

/// Renders the E12 RSA-kernel sweep as machine-readable JSONL. Written to
/// `BENCH_e12.json` by `experiments --bench-e12`. The boolean gate fields
/// (`sign_floor_ok`, `batch_not_slower`, `tampered_attributed`) are emitted
/// by the measurement code itself so the CI smoke step can grep for them
/// instead of re-deriving thresholds in shell.
pub fn render_bench_e12_json(rows: &[E12Row], batches: &[E12Batch]) -> String {
    let mut out = String::new();
    for r in rows {
        out.push_str(&format!(
            "{{\"kind\":\"e12\",\"bits\":{},\"alg\":\"{}\",\"sign_classic_us\":{},\
             \"sign_fast_us\":{},\"sign_speedup_x100\":{},\"verify_classic_us\":{},\
             \"verify_fast_us\":{},\"allocs_per_sign_classic\":{},\
             \"allocs_per_sign_fast\":{},\"sign_floor_ok\":{}}}\n",
            r.bits,
            json_escape(r.alg),
            r.sign_classic_us,
            r.sign_fast_us,
            r.sign_speedup_x100,
            r.verify_classic_us,
            r.verify_fast_us,
            r.allocs_per_sign_classic,
            r.allocs_per_sign_fast,
            r.sign_floor_ok,
        ));
    }
    for b in batches {
        out.push_str(&format!(
            "{{\"kind\":\"e12_batch\",\"bits\":{},\"n\":{},\"serial_us\":{},\
             \"batch_us\":{},\"amortization_x100\":{},\"batch_not_slower\":{},\
             \"tampered_attributed\":{}}}\n",
            b.bits,
            b.n,
            b.serial_us,
            b.batch_us,
            b.amortization_x100,
            b.batch_not_slower,
            b.tampered_attributed,
        ));
    }
    out
}

// ------------------------------------------------------------- JSONL ----

/// Escapes `s` for inclusion inside a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_opt_u64(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

/// Renders one observability event as a single JSON object (no newline).
pub fn event_json(ev: &Event) -> String {
    let mut fields = vec![
        format!("\"at_us\":{}", ev.at.micros()),
        format!("\"txn\":{}", json_opt_u64(ev.txn)),
        format!("\"actor\":\"{}\"", json_escape(&ev.actor)),
        format!("\"kind\":\"{}\"", ev.kind.label()),
    ];
    match &ev.kind {
        EventKind::Delivered { from, msg } => {
            fields.push(format!("\"from\":\"{}\"", json_escape(from)));
            fields.push(format!("\"msg\":\"{}\"", json_escape(msg)));
        }
        EventKind::Rejected { from, msg, error } => {
            fields.push(format!("\"from\":\"{}\"", json_escape(from)));
            fields.push(format!("\"msg\":\"{}\"", json_escape(msg)));
            fields.push(format!("\"error\":\"{}\"", error.variant()));
        }
        EventKind::Garbled { from }
        | EventKind::Dropped { from }
        | EventKind::Duplicated { from } => {
            fields.push(format!("\"from\":\"{}\"", json_escape(from)));
        }
        EventKind::TimerFired { messages } => {
            fields.push(format!("\"messages\":{messages}"));
        }
        EventKind::StateTransition { from, to } => {
            let from = from.map_or_else(
                || "null".to_string(),
                |s| format!("\"{}\"", json_escape(&format!("{s:?}"))),
            );
            fields.push(format!("\"from_state\":{from}"));
            fields.push(format!("\"to_state\":\"{}\"", json_escape(&format!("{to:?}"))));
        }
        EventKind::Crashed => {}
        EventKind::Restarted { snapshot_bytes } => {
            fields.push(format!("\"snapshot_bytes\":{snapshot_bytes}"));
        }
    }
    format!("{{{}}}", fields.join(","))
}

fn histogram_json(h: &Histogram) -> String {
    format!(
        "{{\"count\":{},\"min\":{},\"max\":{},\"mean\":{:.3},\"p50\":{},\"p99\":{}}}",
        h.count(),
        json_opt_u64(h.min()),
        json_opt_u64(h.max()),
        h.mean(),
        json_opt_u64(h.quantile(0.5)),
        json_opt_u64(h.quantile(0.99)),
    )
}

/// Renders the metrics registry as one JSON summary object (no newline).
pub fn metrics_json(m: &Metrics) -> String {
    let rejected_by =
        m.rejected_by.iter().map(|(k, v)| format!("\"{k}\":{v}")).collect::<Vec<_>>().join(",");
    format!(
        "{{\"kind\":\"metrics\",\"delivered\":{},\"rejected\":{},\"garbled\":{},\
         \"dropped\":{},\"duplicated\":{},\"timer_fires\":{},\"state_transitions\":{},\
         \"crashes\":{},\"restarts\":{},\"retries\":{},\"snapshot_bytes\":{},\
         \"rejected_by\":{{{rejected_by}}},\"latency_us\":{},\"settle_steps\":{}}}",
        m.delivered,
        m.rejected,
        m.garbled,
        m.dropped,
        m.duplicated,
        m.timer_fires,
        m.state_transitions,
        m.crashes,
        m.restarts,
        m.retries,
        m.snapshot_bytes,
        histogram_json(&m.latency_us),
        histogram_json(&m.settle_steps),
    )
}

/// Renders a full run as JSONL: one line per event, then one final
/// `"kind":"metrics"` summary line.
pub fn render_trace_jsonl<'a>(
    events: impl IntoIterator<Item = &'a Event>,
    metrics: &Metrics,
) -> String {
    let mut out = String::new();
    for ev in events {
        out.push_str(&event_json(ev));
        out.push('\n');
    }
    out.push_str(&metrics_json(metrics));
    out.push('\n');
    out
}

/// Checks that every non-empty line of `s` is a syntactically valid JSON
/// object and returns how many there were. A dependency-free validator for
/// the CI step that guards the export format (the build cannot fetch a JSON
/// crate).
pub fn validate_jsonl(s: &str) -> Result<usize, String> {
    let mut n = 0;
    for (i, line) in s.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let mut p = JsonParser { bytes: line.as_bytes(), pos: 0 };
        p.skip_ws();
        if p.peek() != Some(b'{') {
            return Err(format!("line {}: not a JSON object", i + 1));
        }
        p.value().map_err(|e| format!("line {}: {e}", i + 1))?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("line {}: trailing garbage at byte {}", i + 1, p.pos));
        }
        n += 1;
    }
    if n == 0 {
        return Err("no JSON lines found".to_string());
    }
    Ok(n)
}

/// Minimal recursive-descent JSON syntax checker (values are not retained).
struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos.saturating_sub(1)))
        }
    }

    fn value(&mut self) -> Result<(), String> {
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other.map(char::from), self.pos)),
        }
    }

    fn object(&mut self) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(()),
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.value()?;
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(()),
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        while let Some(b) = self.bump() {
            match b {
                b'"' => return Ok(()),
                b'\\' => match self.bump() {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {}
                    Some(b'u') => {
                        for _ in 0..4 {
                            if !self.bump().is_some_and(|h| h.is_ascii_hexdigit()) {
                                return Err(format!("bad \\u escape at byte {}", self.pos));
                            }
                        }
                    }
                    _ => return Err(format!("bad escape at byte {}", self.pos)),
                },
                b if b < 0x20 => return Err(format!("raw control byte in string at {}", self.pos)),
                _ => {}
            }
        }
        Err("unterminated string".to_string())
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut digits = 0;
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
            digits += 1;
        }
        if digits == 0 {
            return Err(format!("number without digits at byte {}", self.pos));
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            let mut frac = 0;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
                frac += 1;
            }
            if frac == 0 {
                return Err(format!("number with empty fraction at byte {}", self.pos));
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            let mut exp = 0;
            while self.peek().is_some_and(|b| b.is_ascii_digit()) {
                self.pos += 1;
                exp += 1;
            }
            if exp == 0 {
                return Err(format!("number with empty exponent at byte {}", self.pos));
            }
        }
        Ok(())
    }

    fn literal(&mut self, lit: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(512), "512 B");
        assert_eq!(human_size(2048), "2 KiB");
        assert_eq!(human_size(3 << 20), "3 MiB");
    }

    #[test]
    fn renderers_produce_tables() {
        let e1 = render_e1(&e1_vulnerability_matrix(1));
        assert!(e1.contains("TPNR"));
        let e7 = render_e7(&e7_bridge_schemes(1));
        assert!(e7.contains("3.1"));
        assert!(e7.contains("3.4"));
    }

    #[test]
    fn event_json_covers_every_kind_and_validates() {
        use tpnr_core::session::{TxnState, ValidationError};
        use tpnr_net::time::SimTime;

        let events = [
            Event {
                at: SimTime(1_000),
                txn: Some(7),
                actor: "bob".into(),
                kind: EventKind::Delivered { from: "alice".into(), msg: "Transfer".into() },
            },
            Event {
                at: SimTime(2_000),
                txn: Some(7),
                actor: "bob".into(),
                kind: EventKind::Rejected {
                    from: "alice".into(),
                    msg: "Transfer".into(),
                    error: ValidationError::StaleSequence { last: 2, got: 1 },
                },
            },
            Event {
                at: SimTime(3_000),
                txn: None,
                actor: "bob".into(),
                kind: EventKind::Garbled { from: "mallory \"m\"\n".into() },
            },
            Event {
                at: SimTime(4_000),
                txn: Some(7),
                actor: "alice".into(),
                kind: EventKind::Dropped { from: "bob".into() },
            },
            Event {
                at: SimTime(4_000),
                txn: Some(7),
                actor: "alice".into(),
                kind: EventKind::Duplicated { from: "bob".into() },
            },
            Event {
                at: SimTime(5_000),
                txn: None,
                actor: "ttp".into(),
                kind: EventKind::TimerFired { messages: 1 },
            },
            Event {
                at: SimTime(6_000),
                txn: Some(7),
                actor: "alice".into(),
                kind: EventKind::StateTransition { from: None, to: TxnState::Pending },
            },
        ];
        let jsonl = render_trace_jsonl(&events, &Metrics::default());
        // 7 event lines + the metrics summary, all syntactically valid.
        assert_eq!(validate_jsonl(&jsonl), Ok(8));
        assert!(jsonl.contains("\"txn\":null"));
        assert!(jsonl.contains("\"error\":\"stale-sequence\""));
        assert!(jsonl.contains("mallory \\\"m\\\"\\n"));
        assert!(jsonl.contains("\"from_state\":null"));
        assert!(jsonl.lines().last().unwrap().contains("\"kind\":\"metrics\""));
    }

    #[test]
    fn bench_e4_json_is_valid_jsonl() {
        use tpnr_crypto::hash::HashAlg;
        let rows = e4_evidence_cost(&[1 << 10], &[HashAlg::Md5]);
        let jsonl = render_bench_e4_json(&rows, &[(1 << 10, 0, 0)]);
        assert_eq!(validate_jsonl(&jsonl), Ok(2));
        assert!(jsonl.contains("\"kind\":\"e4\""));
        assert!(jsonl.contains("\"kind\":\"e4-transport\""));
        assert!(jsonl.contains("\"deep_copies\":0"));
    }

    #[test]
    fn bench_e8_json_is_valid_jsonl() {
        let rows = e8_chaos(&[0, 300], 4);
        let jsonl = render_bench_e8_json(&rows);
        assert_eq!(validate_jsonl(&jsonl), Ok(2));
        assert!(jsonl.contains("\"kind\":\"e8\""));
        assert!(jsonl.contains("\"evidence_loss\":0"));
        assert!(jsonl.contains("\"limbo\":0"));
        // The table renderer covers every row too.
        assert_eq!(render_e8(&rows).lines().count(), 3 + rows.len());
    }

    #[test]
    fn bench_e10_json_is_valid_jsonl_and_invariants_hold() {
        // Two counts, one straddling the lane boundary so a ragged final
        // lane is exercised.
        let rows = e10_scale(&[40, 300], 7);
        let jsonl = render_bench_e10_json(&rows);
        assert_eq!(validate_jsonl(&jsonl), Ok(2));
        assert!(jsonl.contains("\"kind\":\"e10\""));
        for r in &rows {
            assert_eq!(r.completed, r.clients, "fault-free lanes settle every txn");
            assert_eq!(r.conservation_violations, 0);
            assert_eq!(r.evidence_loss, 0);
            assert_eq!(r.gave_up, 0);
            assert_eq!(r.delivered + r.dropped, r.sent + r.duplicated);
            assert!(r.p50_us > 0 && r.p99_us >= r.p50_us);
        }
        // 300 clients > 16 shards × 8 hot per lane → eviction engaged, the
        // archive holds bytes, and the resident set is bounded below the
        // txn count.
        let big = &rows[1];
        assert!(big.evicted > 0, "eviction must engage at 300 clients");
        assert!(big.rehydrated >= big.evicted, "verify pass reads every evicted bundle");
        assert!(big.archive_bytes > 0 && big.bytes_per_client > 0);
        assert!(big.resident < big.clients, "resident set bounded: {}", big.resident);
        assert_eq!(render_e10(&rows).lines().count(), 3 + rows.len());
        // The scheduler provenance fields are present in every row.
        assert!(jsonl.contains("\"workers\":"));
        assert!(jsonl.contains("\"available_parallelism\":"));
        assert!(jsonl.contains("\"tasks\":"));
    }

    #[test]
    fn bench_e13_json_is_valid_jsonl_and_gates_hold() {
        let rows = e13_worker_sweep(300, 7);
        let jsonl = render_bench_e13_json(&rows);
        assert_eq!(validate_jsonl(&jsonl), Ok(rows.len()));
        assert!(jsonl.contains("\"kind\":\"e13\""));
        for r in &rows {
            assert!(r.deterministic_vs_serial, "workers={}", r.workers);
            assert_eq!(r.conservation_violations, 0);
            assert_eq!(r.evidence_loss, 0);
        }
        assert!(!jsonl.contains("\"deterministic_vs_serial\":false"));
        assert_eq!(render_e13(&rows).lines().count(), 3 + rows.len());
    }

    #[test]
    fn bench_e14_json_is_valid_jsonl_and_gates_hold() {
        let rows = e14_backend_comparison(7, true);
        assert_eq!(rows.len(), 3, "simnet, channel and tcp rows");
        let jsonl = render_bench_e14_json(&rows);
        assert_eq!(validate_jsonl(&jsonl), Ok(rows.len()));
        assert!(jsonl.contains("\"kind\":\"e14\""));
        assert!(jsonl.contains("\"backend\":\"simnet\""));
        assert!(jsonl.contains("\"backend\":\"channel\""));
        // The two in-process backends must always run; the tcp row may
        // legitimately be skipped on hosts that refuse the loopback bind.
        for r in &rows {
            if r.skipped {
                assert_eq!(r.backend, "tcp", "only tcp may be skipped");
                continue;
            }
            assert_eq!(r.completed, r.txns, "healthy wire settles every txn: {}", r.backend);
            assert_eq!(r.conservation_violations, 0, "{}", r.backend);
            assert_eq!(r.evidence_loss, 0, "{}", r.backend);
            assert!(
                r.attacks_ok,
                "{}: {}/{} §5 attacks rejected",
                r.backend, r.attacks_rejected, r.attacks_expected
            );
            assert_eq!(r.delivered + r.dropped, r.sent + r.duplicated, "{}", r.backend);
        }
        // The table renders one line per row plus the 3-line header.
        assert_eq!(render_e14(&rows).lines().count(), 3 + rows.len());
    }

    #[test]
    fn bench_e12_json_is_valid_jsonl_and_gates_hold() {
        // 512-bit quick run: 3 alg rows + 1 batch row.
        let (rows, batches) = e12_rsa_kernels(&[512], true);
        assert_eq!(rows.len(), 3);
        assert_eq!(batches.len(), 1);
        let jsonl = render_bench_e12_json(&rows, &batches);
        assert_eq!(validate_jsonl(&jsonl), Ok(4));
        assert!(jsonl.contains("\"kind\":\"e12\""));
        assert!(jsonl.contains("\"kind\":\"e12_batch\""));
        for r in &rows {
            assert!(r.sign_fast_us > 0 && r.sign_classic_us > 0);
            assert!(
                r.allocs_per_sign_fast < r.allocs_per_sign_classic,
                "fixed-limb path must allocate less: {} vs {}",
                r.allocs_per_sign_fast,
                r.allocs_per_sign_classic
            );
        }
        let b = &batches[0];
        assert_eq!(b.n, 64);
        assert!(b.tampered_attributed, "tampered batch member must be attributed");
        // Table renderer covers every row (3 header lines per section + blank).
        let table = render_e12(&rows, &batches);
        assert_eq!(table.lines().count(), 3 + rows.len() + 4 + batches.len());
    }

    #[test]
    fn bench_e10_non_timing_fields_are_deterministic() {
        let strip = |rows: &[E10Row]| {
            render_bench_e10_json(rows)
                .lines()
                .map(|l| {
                    // Drop the host-timing pair and the steal counter
                    // (which worker went idle first is scheduling noise);
                    // everything else must be byte-identical across reruns.
                    l.split(',')
                        .filter(|f| {
                            !f.contains("\"elapsed_ms\"")
                                && !f.contains("\"txn_per_sec\"")
                                && !f.contains("\"steals\"")
                        })
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .collect::<Vec<_>>()
        };
        let a = e10_scale(&[200], 11);
        let b = e10_scale(&[200], 11);
        assert_eq!(strip(&a), strip(&b));
    }

    #[test]
    fn validator_rejects_malformed_lines() {
        assert!(validate_jsonl("").is_err(), "empty export is an error");
        assert!(validate_jsonl("{\"a\":1}\n{\"b\":").is_err());
        assert!(validate_jsonl("{\"a\":1} extra").is_err());
        assert!(validate_jsonl("[1,2,3]").is_err(), "top level must be an object");
        assert!(validate_jsonl("{\"a\":01}").is_ok(), "leading zeros pass the syntax check");
        assert_eq!(validate_jsonl("{\"a\":[1,-2.5e3,\"x\",true,null],\"b\":{}}\n\n"), Ok(1));
    }

    #[test]
    fn trace_jsonl_export_is_valid_and_complete() {
        let jsonl = trace_jsonl(2026);
        let n = validate_jsonl(&jsonl).expect("export is valid JSONL");
        assert!(n > 20, "a full faulted run produces a real trace, got {n} lines");
        for kind in ["delivered", "dropped", "duplicated", "state-transition"] {
            assert!(jsonl.contains(&format!("\"kind\":\"{kind}\"")), "missing {kind}");
        }
        assert!(jsonl.lines().last().unwrap().contains("\"kind\":\"metrics\""));
    }
}
