//! Plain-text table rendering for the `experiments` binary.

use crate::experiments::*;

fn human_size(bytes: usize) -> String {
    if bytes >= 1 << 20 {
        format!("{} MiB", bytes >> 20)
    } else if bytes >= 1 << 10 {
        format!("{} KiB", bytes >> 10)
    } else {
        format!("{bytes} B")
    }
}

fn yn(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "no"
    }
}

/// Renders E1 as a table.
pub fn render_e1(rows: &[E1Row]) -> String {
    let mut out = String::from(
        "E1 / Figure 5 — in-storage tamper: detection & attribution\n\
         system   tamper               detected  attributable\n\
         -------  -------------------  --------  ------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<8} {:<20} {:<9} {}\n",
            r.system,
            r.tamper,
            yn(r.detected),
            yn(r.attributable)
        ));
    }
    out
}

/// Renders E2 as a table.
pub fn render_e2(rows: &[E2Row]) -> String {
    let mut out = String::from(
        "E2 / Figure 6 — TPNR vs traditional NR (messages / latency / TTP)\n\
         protocol        rtt(ms)  size      msgs  latency(ms)  ttp\n\
         --------------  -------  --------  ----  -----------  ---\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<15} {:>7}  {:<9} {:>4}  {:>11.1}  {}\n",
            r.protocol,
            r.rtt_ms,
            human_size(r.size),
            r.messages,
            r.latency_ms,
            yn(r.ttp_used)
        ));
    }
    out
}

/// Renders E3 as a table.
pub fn render_e3(rows: &[tpnr_attacks::AttackOutcome]) -> String {
    let mut out = String::from(
        "E3 / §5 — attack matrix (attack × protocol variant)\n\
         attack              variant             blocked  note\n\
         ------------------  ------------------  -------  ----\n",
    );
    for r in rows {
        let note: String = r.detail.chars().take(60).collect();
        out.push_str(&format!(
            "{:<19} {:<19} {:<8} {}\n",
            r.attack.label(),
            r.ablation.label(),
            yn(r.blocked),
            note
        ));
    }
    out
}

/// Renders E4 as a table.
pub fn render_e4(rows: &[E4Row]) -> String {
    let mut out = String::from(
        "E4 — evidence generation/verification cost\n\
         size      hash      generate(us)  verify(us)\n\
         --------  --------  ------------  ----------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<9} {:<9} {:>12.0}  {:>10.0}\n",
            human_size(r.size),
            r.alg.name(),
            r.generate_us,
            r.verify_us
        ));
    }
    out
}

/// Renders E5 as a table.
pub fn render_e5(rows: &[E5Row]) -> String {
    let mut out = String::from(
        "E5 / §6 — protocol time vs device shipping time\n\
         transit(h)  protocol(ms)  overhead fraction\n\
         ----------  ------------  -----------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>10}  {:>12.1}  {:>17.8}\n",
            r.transit_hours, r.protocol_ms, r.overhead_fraction
        ));
    }
    out
}

/// Renders E6 as a table.
pub fn render_e6(rows: &[E6Row]) -> String {
    let mut out = String::from(
        "E6 / §4.4 — TTP involvement vs fault rate\n\
         fault rate  TPNR ttp%  TPNR completed%  traditional ttp%\n\
         ----------  ---------  ---------------  ----------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:>10.2}  {:>9.2}  {:>15.2}  {:>16.2}\n",
            r.fault_rate,
            r.tpnr_ttp_fraction * 100.0,
            r.tpnr_completed_fraction * 100.0,
            r.baseline_ttp_fraction * 100.0
        ));
    }
    out
}

/// Renders E7 as a table.
pub fn render_e7(rows: &[E7Row]) -> String {
    let mut out = String::from(
        "E7 / §3 — bridging schemes\n\
         scheme             msgs  user/provider/TAC bytes  coop-proof  solo-proof  attributable\n\
         -----------------  ----  -----------------------  ----------  ----------  ------------\n",
    );
    for r in rows {
        out.push_str(&format!(
            "{:<18} {:>4}  {:>6}/{:>6}/{:>6}      {:<11} {:<11} {}\n",
            r.scheme.label(),
            r.messages,
            r.records.0,
            r.records.1,
            r.records.2,
            yn(r.proves_with_cooperation),
            yn(r.proves_alone),
            yn(r.attributable)
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_sizes() {
        assert_eq!(human_size(512), "512 B");
        assert_eq!(human_size(2048), "2 KiB");
        assert_eq!(human_size(3 << 20), "3 MiB");
    }

    #[test]
    fn renderers_produce_tables() {
        let e1 = render_e1(&e1_vulnerability_matrix(1));
        assert!(e1.contains("TPNR"));
        let e7 = render_e7(&e7_bridge_schemes(1));
        assert!(e7.contains("3.1"));
        assert!(e7.contains("3.4"));
    }
}
