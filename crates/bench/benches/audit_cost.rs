//! Extension X1: remote audit vs full download — bytes and time to gain
//! integrity assurance about a stored object under Merkle commitments.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpnr_core::chunked::AuditChallenge;
use tpnr_core::client::TimeoutStrategy;
use tpnr_core::config::ProtocolConfig;
use tpnr_core::runner::World;

fn bench_audit_vs_download(c: &mut Criterion) {
    let mut g = c.benchmark_group("x1_audit_vs_download");
    g.sample_size(10);
    for size in [1usize << 18, 1 << 21] {
        let cfg = ProtocolConfig::full().with_merkle(4096);
        let mut w = World::new(77, cfg.clone());
        let up = w.upload(b"obj", vec![0xabu8; size], TimeoutStrategy::AbortFirst);

        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("single_chunk_audit", size), &size, |b, _| {
            b.iter(|| {
                let challenge = AuditChallenge { object: b"obj".to_vec(), chunk_index: 3 };
                let resp = w.provider.answer_audit(&cfg, &challenge).unwrap();
                w.client.verify_audit(&cfg, up.txn_id, &resp).unwrap();
            })
        });

        g.bench_with_input(BenchmarkId::new("full_download_check", size), &size, |b, _| {
            b.iter(|| {
                let mut w2 = World::new(78, cfg.clone());
                let up2 = w2.upload(b"obj", vec![0xabu8; size], TimeoutStrategy::AbortFirst);
                let down = w2.download(b"obj", TimeoutStrategy::AbortFirst);
                assert_eq!(
                    w2.client.verify_download_against_upload(up2.txn_id, down.txn_id),
                    Some(true)
                );
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_audit_vs_download);
criterion_main!(benches);
