//! E2 / Figure 6: end-to-end protocol runs — TPNR Normal / Abort / Resolve
//! vs the traditional four-step baseline — measuring compute cost of a full
//! settled exchange (the simulated-latency comparison is in the
//! `experiments` binary; here Criterion measures the CPU work).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpnr_core::baseline;
use tpnr_core::client::TimeoutStrategy;
use tpnr_core::config::ProtocolConfig;
use tpnr_core::runner::World;
use tpnr_core::session::TxnState;
use tpnr_net::time::SimDuration;

fn bench_normal_mode(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpnr_normal_upload");
    g.sample_size(10);
    for size in [1usize << 10, 1 << 18, 1 << 20] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &sz| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut w = World::new(seed, ProtocolConfig::full());
                let r = w.upload(b"obj", vec![0u8; sz], TimeoutStrategy::AbortFirst);
                assert_eq!(r.outcome, TxnState::Completed);
                r
            })
        });
    }
    g.finish();
}

fn bench_sub_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("tpnr_sub_protocols");
    g.sample_size(10);
    g.bench_function("abort_path", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut w = World::new(seed, ProtocolConfig::full());
            w.provider.behavior.respond_transfers = false;
            let r = w.upload(b"obj", vec![0u8; 1024], TimeoutStrategy::AbortFirst);
            assert_eq!(r.outcome, TxnState::Aborted);
            r
        })
    });
    g.bench_function("resolve_path", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut w = World::new(seed, ProtocolConfig::full());
            // Receipts lost: resolve via the TTP recovers the NRR.
            let (alice, bob) = (w.alice_node, w.bob_node);
            w.net_mut().set_link(
                bob,
                alice,
                tpnr_net::LinkConfig { drop_prob: 1.0, ..Default::default() },
            );
            let r = w.upload(b"obj", vec![0u8; 1024], TimeoutStrategy::ResolveImmediately);
            assert_eq!(r.outcome, TxnState::Completed);
            r
        })
    });
    g.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("traditional_nr");
    g.sample_size(10);
    for size in [1usize << 10, 1 << 20] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &size, |b, &sz| {
            let mut seed = 0u64;
            let data = vec![0u8; sz];
            b.iter(|| {
                seed += 1;
                baseline::run_exchange(seed, &data, SimDuration::from_millis(10)).unwrap()
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_normal_mode, bench_sub_protocols, bench_baseline);
criterion_main!(benches);
