//! E4: cost of TPNR evidence — building (hash + two signatures + hybrid
//! seal) and verifying (open + two signature checks) — across payload sizes
//! and the MD5-vs-SHA-256 hash choice.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpnr_core::config::ProtocolConfig;
use tpnr_core::evidence::{open_and_verify, seal, EvidencePlaintext, Flag};
use tpnr_core::principal::Principal;
use tpnr_crypto::hash::HashAlg;
use tpnr_crypto::ChaChaRng;
use tpnr_net::time::SimTime;

fn plaintext_for(
    alice: &Principal,
    bob: &Principal,
    alg: HashAlg,
    data: &[u8],
) -> EvidencePlaintext {
    EvidencePlaintext {
        flag: Flag::UploadRequest,
        sender: alice.id(),
        recipient: bob.id(),
        ttp: bob.id(),
        txn_id: 1,
        seq: 1,
        nonce: 42,
        time_limit: SimTime(u64::MAX),
        object: b"k".to_vec(),
        hash_alg: alg,
        data_hash: alg.hash(data),
    }
}

fn bench_evidence(c: &mut Criterion) {
    let alice = Principal::test("alice", 1);
    let bob = Principal::test("bob", 2);
    let cfg = ProtocolConfig::full();

    let mut g = c.benchmark_group("evidence_generate");
    g.sample_size(20);
    for size in [1usize << 10, 1 << 16, 1 << 20, 8 << 20] {
        let data = vec![0x11u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        for alg in [HashAlg::Md5, HashAlg::Sha256] {
            g.bench_with_input(BenchmarkId::new(alg.name(), size), &data, |b, d| {
                let mut rng = ChaChaRng::seed_from_u64(3);
                b.iter(|| {
                    // The full sender-side path: hash the payload, sign both
                    // values, seal for the recipient.
                    let pt = plaintext_for(&alice, &bob, alg, d);
                    seal(&cfg, &alice, bob.public(), &pt, &mut rng).unwrap()
                })
            });
        }
    }
    g.finish();

    let mut g = c.benchmark_group("evidence_verify");
    g.sample_size(20);
    for size in [1usize << 10, 1 << 20] {
        let data = vec![0x22u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        for alg in [HashAlg::Md5, HashAlg::Sha256] {
            let mut rng = ChaChaRng::seed_from_u64(4);
            let pt = plaintext_for(&alice, &bob, alg, &data);
            let sealed = seal(&cfg, &alice, bob.public(), &pt, &mut rng).unwrap();
            g.bench_with_input(BenchmarkId::new(alg.name(), size), &data, |b, d| {
                b.iter(|| {
                    // Receiver-side: re-hash the payload and verify.
                    let _ = alg.hash(d);
                    open_and_verify(&cfg, &bob, alice.public(), &pt, &sealed).unwrap()
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_evidence);
criterion_main!(benches);
