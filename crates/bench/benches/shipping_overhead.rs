//! E5 / §6: protocol time vs device-shipping time for AWS-style
//! Import/Export — regenerates the overhead-fraction table and times the
//! import validation path.

use criterion::{criterion_group, criterion_main, Criterion};
use tpnr_bench::e5_shipping_overhead;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e5_shipping_overhead");
    g.sample_size(10);
    g.bench_function("table", |b| {
        b.iter(|| {
            let rows = e5_shipping_overhead(&[24, 72, 120]);
            assert!(rows.iter().all(|r| r.overhead_fraction < 0.001));
            rows
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
