//! E6 / §4.4: TTP involvement as a function of the fault rate — TPNR's
//! off-line TTP vs the always-in-line traditional protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpnr_bench::e6_ttp_load;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e6_ttp_load");
    g.sample_size(10);
    for p in [0.0f64, 0.2, 0.5] {
        g.bench_with_input(BenchmarkId::from_parameter(p), &p, |b, &p| {
            b.iter(|| {
                let rows = e6_ttp_load(&[p], 5);
                assert_eq!(rows.len(), 1);
                rows
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
