//! F2–F4 / Table 1: the three platform security flows — Azure signed-REST
//! PUT/GET with Content-MD5, AWS Import/Export manifest validation, and GAE
//! SDC signed-request authorization.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpnr_crypto::ChaChaRng;
use tpnr_crypto::RsaKeyPair;
use tpnr_net::time::SimTime;
use tpnr_storage::aws::{self, AwsService};
use tpnr_storage::azure::AzureService;
use tpnr_storage::gae::{GaeService, SignedRequest};
use tpnr_storage::rest::{Method, RestRequest};

fn bench_azure(c: &mut Criterion) {
    let mut g = c.benchmark_group("azure");
    let mut svc = AzureService::new();
    let mut rng = ChaChaRng::seed_from_u64(1);
    let acct = svc.create_account("jerry", &mut rng);

    // Table 1's auth path alone: build + sign + verify one request.
    g.bench_function("table1_sign_and_verify", |b| {
        b.iter(|| {
            let req = RestRequest::new(
                Method::Put,
                "/jerry/pics/photo.jpg?comp=block&blockid=blockid1",
                b"block contents".to_vec(),
                "Sun, 13 Sept 2009 18:30:25 GMT",
            )
            .with_content_md5()
            .sign(&acct.name, &acct.key);
            assert!(req.verify_signature(&acct.name, &acct.key));
            req
        })
    });

    for size in [1usize << 10, 1 << 20] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("put_get", size), &size, |b, &sz| {
            let body = vec![0x42u8; sz];
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let key = format!("/jerry/obj-{i}");
                let put = RestRequest::new(Method::Put, &key, body.clone(), "d")
                    .with_content_md5()
                    .sign(&acct.name, &acct.key);
                svc.handle(&put, SimTime::ZERO).unwrap();
                let get = RestRequest::new(Method::Get, &key, Vec::new(), "d")
                    .sign(&acct.name, &acct.key);
                svc.handle(&get, SimTime::ZERO).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_aws(c: &mut Criterion) {
    let mut g = c.benchmark_group("aws_import_export");
    g.sample_size(20);
    let user = RsaKeyPair::insecure_test_key(5);

    for size in [1usize << 10, 1 << 20] {
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::new("import", size), &size, |b, &sz| {
            let data = vec![0x55u8; sz];
            let mut job = 0u64;
            b.iter(|| {
                job += 1;
                let mut svc = AwsService::new();
                svc.register_user("AKIAUSER", user.public.clone());
                let (manifest, device) = aws::prepare_import(
                    &user,
                    "AKIAUSER",
                    "dev-1",
                    "bucket/backup",
                    job,
                    data.clone(),
                )
                .unwrap();
                svc.process_import(&manifest, &device, SimTime::ZERO).unwrap()
            })
        });
    }
    g.finish();
}

fn bench_gae(c: &mut Criterion) {
    let mut g = c.benchmark_group("gae_sdc");
    g.sample_size(20);
    let keys = RsaKeyPair::insecure_test_key(6);
    let mut svc = GaeService::new();
    svc.register_identity("alice", keys.public.clone());
    svc.grant("alice", "apps/");

    // The nonce must be unique across every Criterion invocation of the
    // closure (the SDC rejects replays), so it lives outside.
    let mut nonce = 0u64;
    g.bench_function("signed_request_roundtrip", move |b| {
        b.iter(|| {
            nonce += 1;
            let req = SignedRequest::create(
                &keys,
                "owner",
                "alice",
                1,
                "app",
                "ck",
                nonce,
                "tok",
                "apps/data",
            )
            .unwrap();
            svc.put(&req, b"entity bytes", SimTime::ZERO).unwrap();
        })
    });
    g.finish();
}

criterion_group!(benches, bench_azure, bench_aws, bench_gae);
criterion_main!(benches);
