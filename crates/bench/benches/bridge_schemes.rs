//! E7 / §3: the four bridging schemes — upload-session cost and dispute
//! evaluation for each TAC/SKS combination.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use tpnr_core::bridge::{make_scheme, DisputeScenario, SchemeKind};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e7_bridge_schemes");
    g.sample_size(20);
    let coop = DisputeScenario { counterparty_cooperates: true, tac_available: true };
    for kind in SchemeKind::all() {
        g.bench_function(BenchmarkId::new("upload_and_dispute", kind.label()), |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let mut s = make_scheme(kind, seed);
                s.upload(b"the agreed data");
                s.tamper(b"tampered");
                s.tamper_proven(coop)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
