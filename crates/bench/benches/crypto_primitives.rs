//! E4/E9 (crypto side): throughput of every primitive the protocol leans on
//! — the 2010-era hash suite, HMAC, RSA operations and Shamir sharing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use tpnr_crypto::hash::HashAlg;
use tpnr_crypto::hmac::Hmac;
use tpnr_crypto::sha2::Sha256;
use tpnr_crypto::shamir;
use tpnr_crypto::{chacha20, ChaChaRng, RsaKeyPair};

fn bench_hashes(c: &mut Criterion) {
    let mut g = c.benchmark_group("hash");
    for size in [1usize << 10, 1 << 16, 1 << 20] {
        let data = vec![0xa5u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        for alg in [HashAlg::Md5, HashAlg::Sha1, HashAlg::Sha256, HashAlg::Sha512] {
            g.bench_with_input(BenchmarkId::new(alg.name(), size), &data, |b, d| {
                b.iter(|| alg.hash(d))
            });
        }
    }
    g.finish();
}

fn bench_hmac(c: &mut Criterion) {
    let mut g = c.benchmark_group("hmac_sha256");
    for size in [64usize, 1 << 10, 1 << 16] {
        let data = vec![0x3cu8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| Hmac::<Sha256>::mac(b"azure-account-key-256bit-secret!", d))
        });
    }
    g.finish();
}

fn bench_chacha20(c: &mut Criterion) {
    let mut g = c.benchmark_group("chacha20");
    let key = [7u8; 32];
    let nonce = [1u8; 12];
    for size in [1usize << 10, 1 << 20] {
        let data = vec![0u8; size];
        g.throughput(Throughput::Bytes(size as u64));
        g.bench_with_input(BenchmarkId::from_parameter(size), &data, |b, d| {
            b.iter(|| chacha20::encrypt(&key, &nonce, d))
        });
    }
    g.finish();
}

fn bench_rsa(c: &mut Criterion) {
    let mut g = c.benchmark_group("rsa");
    g.sample_size(20);
    let mut rng = ChaChaRng::seed_from_u64(1);
    let kp512 = RsaKeyPair::insecure_test_key(1);
    let kp1024 = RsaKeyPair::generate(1024, &mut rng);
    let digest = HashAlg::Sha256.hash(b"message");
    for (label, kp) in [("512", &kp512), ("1024", &kp1024)] {
        g.bench_function(BenchmarkId::new("sign", label), |b| {
            b.iter(|| kp.private.sign_prehashed(HashAlg::Sha256, &digest).unwrap())
        });
        let sig = kp.private.sign_prehashed(HashAlg::Sha256, &digest).unwrap();
        g.bench_function(BenchmarkId::new("verify", label), |b| {
            b.iter(|| kp.public.verify_prehashed(HashAlg::Sha256, &digest, &sig).unwrap())
        });
        g.bench_function(BenchmarkId::new("encrypt32B", label), |b| {
            b.iter(|| kp.public.encrypt(&mut rng, &digest).unwrap())
        });
        let ct = kp.public.encrypt(&mut rng, &digest).unwrap();
        g.bench_function(BenchmarkId::new("decrypt32B", label), |b| {
            b.iter(|| kp.private.decrypt(&ct).unwrap())
        });
    }
    g.finish();

    let mut g = c.benchmark_group("rsa_keygen");
    g.sample_size(10);
    g.bench_function("512", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let mut r = ChaChaRng::seed_from_u64(seed);
            RsaKeyPair::generate(512, &mut r)
        })
    });
    g.finish();
}

fn bench_shamir(c: &mut Criterion) {
    let mut g = c.benchmark_group("shamir");
    let secret = HashAlg::Md5.hash(b"the agreed data"); // 16 bytes, the paper's MD5
    for (k, n) in [(2usize, 2usize), (2, 5), (3, 5), (5, 10)] {
        let label = format!("{k}-of-{n}");
        g.bench_function(BenchmarkId::new("split", &label), |b| {
            let mut rng = ChaChaRng::seed_from_u64(2);
            b.iter(|| shamir::split(&secret, k, n, &mut rng).unwrap())
        });
        let mut rng = ChaChaRng::seed_from_u64(2);
        let shares = shamir::split(&secret, k, n, &mut rng).unwrap();
        g.bench_function(BenchmarkId::new("combine", &label), |b| {
            b.iter(|| shamir::combine(&shares[..k]).unwrap())
        });
    }
    g.finish();
}

criterion_group!(benches, bench_hashes, bench_hmac, bench_chacha20, bench_rsa, bench_shamir);
criterion_main!(benches);
