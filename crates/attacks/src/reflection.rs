//! §5.2 reflection: send a party's own traffic back at it.
//!
//! TPNR defeats reflection *structurally*: the protocol is not a
//! challenge–response system, every plaintext binds sender / recipient /
//! direction under the signature, and the two roles speak disjoint message
//! types. We run the reflection against TPNR (expected: blocked, in every
//! variant) and contrast it with [`crate::toy`]'s symmetric protocol where
//! the same attack succeeds — showing the attack class is real and the
//! structure is what stops it.

use crate::harness::{AttackKind, AttackOutcome};
use tpnr_core::client::TimeoutStrategy;
use tpnr_core::config::{Ablation, ProtocolConfig};
use tpnr_core::message::Message;
use tpnr_core::runner::World;
use tpnr_core::session::TxnState;
use tpnr_net::codec::Wire;

/// Runs the reflection attack against the given protocol variant.
pub fn run(ablation: Ablation) -> AttackOutcome {
    let cfg = ProtocolConfig::ablated(ablation);
    let mut w = World::new(61, cfg);
    let alice_id = w.client.id();
    let bob_id = w.provider.id();
    let now = w.net().now();

    // Capture Alice's outbound transfer…
    let (txn_id, out) = w
        .client
        .begin_upload(b"k", b"data".to_vec(), now, TimeoutStrategy::AbortFirst)
        .expect("initiation");
    let wire = out[0].msg.to_wire_bytes();

    // …and reflect it straight back at her, claiming it came from Bob.
    let reflected = Message::from_wire_bytes(&wire).unwrap();
    let result = w.client.handle(bob_id, &reflected, now);

    // Also try reflecting Bob's receipt back at Bob (the other direction).
    let receipt_reflection = {
        let fwd = Message::from_wire_bytes(&wire).unwrap();
        let replies = w.provider.handle(alice_id, &fwd, now).unwrap_or_default();
        match replies.into_iter().next() {
            Some(r) => w.provider.handle(alice_id, &r.msg, now).is_ok(),
            None => false,
        }
    };

    let state_moved = w.client.txn_state(txn_id) == Some(TxnState::Completed);
    let succeeded = (result.is_ok() && state_moved) || receipt_reflection;

    AttackOutcome {
        attack: AttackKind::Reflection,
        ablation,
        blocked: !succeeded,
        detail: if succeeded {
            "a reflected message was accepted by its own sender".to_string()
        } else {
            format!(
                "reflection refused (role asymmetry + direction binding): {}",
                result.err().map(|e| e.to_string()).unwrap_or_else(|| "state unchanged".into())
            )
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn full_protocol_blocks_reflection() {
        let o = run(Ablation::None);
        assert!(o.blocked, "{}", o.detail);
    }

    #[test]
    fn reflection_blocked_even_without_identity_binding() {
        // The defence is structural: the client simply has no code path
        // that accepts a Transfer, with or without identity checks.
        let o = run(Ablation::NoIdentityBinding);
        assert!(o.blocked, "{}", o.detail);
    }

    #[test]
    fn contrast_symmetric_protocol_falls_to_reflection() {
        assert!(toy::reflection_attack_succeeds());
    }
}
