//! §5.5 timeliness: hold a valid message back and deliver it much later.
//!
//! The attacker delays Alice's signed upload (say, "current price list") by
//! ten days and only then lets it through. With the per-message time limit
//! enforced, the stale message is refused on arrival; without it, the
//! provider installs ten-day-old data as current — and Alice's own
//! signature makes the stale state look authorised.

use crate::harness::{AttackKind, AttackOutcome};
use tpnr_core::client::TimeoutStrategy;
use tpnr_core::config::{Ablation, ProtocolConfig};
use tpnr_core::message::Message;
use tpnr_core::runner::World;
use tpnr_net::codec::Wire;
use tpnr_net::time::SimDuration;

/// Runs the timeliness attack against the given protocol variant.
pub fn run(ablation: Ablation) -> AttackOutcome {
    let cfg = ProtocolConfig::ablated(ablation);
    let mut w = World::new(51, cfg);
    let alice_id = w.client.id();

    // Alice signs an upload now…
    let (_txn, out) = w
        .client
        .begin_upload(
            b"prices",
            b"prices as of day 0".to_vec(),
            w.net().now(),
            TimeoutStrategy::AbortFirst,
        )
        .expect("initiation");
    let Message::Transfer { .. } = &out[0].msg else { panic!("expected transfer") };
    let held = out[0].msg.to_wire_bytes();

    // …but the attacker sits on it for ten days before delivery.
    w.net_mut().advance(SimDuration::from_hours(10 * 24));
    let late = Message::from_wire_bytes(&held).unwrap();
    let now = w.net().now();
    let result = w.provider.handle(alice_id, &late, now);

    let installed = w.provider.peek_storage(b"prices").is_some();
    let succeeded = result.is_ok() && installed;

    AttackOutcome {
        attack: AttackKind::Timeliness,
        ablation,
        blocked: !succeeded,
        detail: if succeeded {
            "ten-day-old signed upload was installed as current data".to_string()
        } else {
            format!(
                "stale message refused on arrival: {}",
                result.err().map(|e| e.to_string()).unwrap_or_else(|| "not stored".into())
            )
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_protocol_blocks_stale_delivery() {
        let o = run(Ablation::None);
        assert!(o.blocked, "{}", o.detail);
        assert!(o.detail.contains("expired"), "{}", o.detail);
    }

    #[test]
    fn ablated_time_limits_admit_stale_delivery() {
        let o = run(Ablation::NoTimeLimits);
        assert!(!o.blocked, "{}", o.detail);
    }

    #[test]
    fn unrelated_ablation_does_not_admit_stale_delivery() {
        let o = run(Ablation::NoSequenceNumbers);
        assert!(o.blocked);
    }
}
