//! §5.1 man-in-the-middle: key substitution.
//!
//! Mallory binds her own public key to Alice's identity in the provider's
//! key store and then forges an upload "from Alice" carrying planted data,
//! signed with Mallory's key. If the provider authenticates public keys
//! against the certified directory (the paper's prescription), the forged
//! evidence fails verification; with authentication ablated, the provider
//! accepts the upload, stores the planted data, and archives "evidence"
//! that frames Alice.

use crate::harness::{AttackKind, AttackOutcome};
use tpnr_core::config::{Ablation, ProtocolConfig};
use tpnr_core::evidence::{seal, EvidencePlaintext, Flag};
use tpnr_core::message::Message;
use tpnr_core::principal::Principal;
use tpnr_core::runner::World;
use tpnr_core::session::Payload;
use tpnr_crypto::ChaChaRng;
use tpnr_net::codec::Wire;
use tpnr_net::time::SimDuration;

/// Runs the MITM attack against the given protocol variant.
pub fn run(ablation: Ablation) -> AttackOutcome {
    let cfg = ProtocolConfig::ablated(ablation);
    let mut w = World::new(31, cfg.clone());
    let alice_id = w.client.id();
    let bob_id = w.provider.id();
    let ttp_id = w.ttp.id();
    let now = w.net().now();

    let mallory = Principal::test("mallory", 0xbad);
    let mut rng = ChaChaRng::seed_from_u64(0xbad_0bad);

    // Poison the provider's wire-learned key store: "Alice's key" is now
    // Mallory's. (Only consulted when key authentication is off.)
    w.provider.learn_wire_key(alice_id, mallory.public().clone());

    // Forge the transfer.
    let payload = Payload { key: b"ledger".to_vec(), data: b"planted by mallory".to_vec().into() };
    let pt = EvidencePlaintext {
        flag: Flag::UploadRequest,
        sender: alice_id, // the lie
        recipient: bob_id,
        ttp: ttp_id,
        txn_id: 5555,
        seq: 1,
        nonce: rng.next_u64(),
        time_limit: now.after(SimDuration::from_secs(120)),
        object: payload.key.clone(),
        hash_alg: cfg.hash_alg,
        data_hash: payload.hash(cfg.hash_alg),
    };
    let bob_pk = w.dir.lookup(&bob_id).expect("bob registered").clone();
    let sealed = seal(&cfg, &mallory, &bob_pk, &pt, &mut rng).expect("sealing");
    let msg = Message::Transfer { plaintext: pt, data: payload.to_wire_bytes(), evidence: sealed };

    let result = w.provider.handle(alice_id, &msg, now);
    let planted = w.provider.peek_storage(b"ledger") == Some(&b"planted by mallory"[..]);
    let succeeded = result.is_ok() && planted;

    AttackOutcome {
        attack: AttackKind::Mitm,
        ablation,
        blocked: !succeeded,
        detail: if succeeded {
            "provider accepted a forged upload attributed to Alice and archived \
             framing 'evidence' signed by Mallory's substituted key"
                .to_string()
        } else {
            format!(
                "provider rejected the forged transfer: {}",
                result.err().map(|e| e.to_string()).unwrap_or_else(|| "no data stored".into())
            )
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_protocol_blocks_mitm() {
        let o = run(Ablation::None);
        assert!(o.blocked, "{}", o.detail);
    }

    #[test]
    fn ablated_key_auth_admits_mitm() {
        let o = run(Ablation::NoKeyAuthentication);
        assert!(!o.blocked, "{}", o.detail);
    }

    #[test]
    fn unrelated_ablation_does_not_admit_mitm() {
        // Removing time limits must not open the key-substitution hole.
        let o = run(Ablation::NoTimeLimits);
        assert!(o.blocked);
    }
}
