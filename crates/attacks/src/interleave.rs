//! §5.3 interleaving: splice messages across concurrent sessions.
//!
//! The attacker runs two transactions carrying the same object and tries to
//! satisfy the second with evidence captured from the first. In TPNR the
//! signed plaintext binds the transaction id and a fresh nonce, each session
//! completes in a single round, and receive windows are per transaction —
//! so every splice either fails signature verification or lands in the
//! wrong replay window. As with reflection, the defence is structural; the
//! [`crate::toy`] symmetric protocol shows the attack class succeeding
//! where that structure is absent.

use crate::harness::{AttackKind, AttackOutcome};
use std::sync::{Arc, Mutex};
use tpnr_core::client::TimeoutStrategy;
use tpnr_core::config::{Ablation, ProtocolConfig};
use tpnr_core::message::Message;
use tpnr_core::runner::World;
use tpnr_core::session::TxnState;
use tpnr_net::codec::Wire;
use tpnr_net::sim::Action;
use tpnr_net::Bytes;

/// Runs the interleaving attack against the given protocol variant.
pub fn run(ablation: Ablation) -> AttackOutcome {
    let cfg = ProtocolConfig::ablated(ablation);
    let mut w = World::new(71, cfg);

    // Record bob→alice receipts.
    let tape: Arc<Mutex<Vec<Bytes>>> = Arc::new(Mutex::new(Vec::new()));
    let tap = tape.clone();
    let bob_node = w.bob_node;
    let alice_node = w.alice_node;
    w.net_mut().set_interceptor(Box::new(
        move |src: tpnr_net::NodeId, dst: tpnr_net::NodeId, payload: &[u8], _t| {
            if src == bob_node && dst == alice_node {
                tap.lock().unwrap().push(Bytes::from(payload.to_vec()));
            }
            Action::Deliver
        },
    ));

    // Session 1 completes normally; its receipt is on tape.
    let _r1 = w.upload(b"same-object", b"same bytes".to_vec(), TimeoutStrategy::AbortFirst);
    let session1_receipt = Message::from_wire_bytes(&tape.lock().unwrap()[0]).unwrap();

    // Session 2: identical object and bytes, but a new transaction. The
    // attacker suppresses Bob's real receipt and splices in session 1's.
    w.net_mut().clear_interceptor();
    w.net_mut().set_interceptor(Box::new(
        move |src: tpnr_net::NodeId, dst: tpnr_net::NodeId, _payload: &[u8], _t| {
            if src == bob_node && dst == alice_node {
                Action::Drop
            } else {
                Action::Deliver
            }
        },
    ));
    let now = w.net().now();
    let (txn2, out) = w
        .client
        .begin_upload(b"same-object", b"same bytes".to_vec(), now, TimeoutStrategy::AbortFirst)
        .expect("initiation");
    w.send_from_client(out);
    while w.net().in_flight() {
        w.net_mut().step(); // deliver transfer; receipt is dropped
    }

    // The splice: deliver session 1's receipt as if it answered session 2.
    let bob_id = w.provider.id();
    let now = w.net().now();
    let result = w.client.handle(bob_id, &session1_receipt, now);
    let completed = w.client.txn_state(txn2) == Some(TxnState::Completed);
    let succeeded = result.is_ok() && completed;

    AttackOutcome {
        attack: AttackKind::Interleaving,
        ablation,
        blocked: !succeeded,
        detail: if succeeded {
            "session 2 was completed with a receipt spliced from session 1".to_string()
        } else {
            format!(
                "splice refused (txn binding in signed plaintext): {}",
                result.err().map(|e| e.to_string()).unwrap_or_else(|| "txn2 not completed".into())
            )
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::toy;

    #[test]
    fn full_protocol_blocks_interleaving() {
        let o = run(Ablation::None);
        assert!(o.blocked, "{}", o.detail);
    }

    #[test]
    fn interleaving_blocked_even_without_identity_binding() {
        let o = run(Ablation::NoIdentityBinding);
        assert!(o.blocked, "{}", o.detail);
    }

    #[test]
    fn interleaving_blocked_even_without_sequence_numbers() {
        // Even with the replay window off, the spliced receipt names the
        // wrong transaction id and cannot complete session 2.
        let o = run(Ablation::NoSequenceNumbers);
        assert!(o.blocked, "{}", o.detail);
    }

    #[test]
    fn contrast_symmetric_protocol_falls_to_interleaving() {
        assert!(toy::interleaving_attack_succeeds());
    }
}
