//! # tpnr-attacks
//!
//! Executable robustness analysis for paper §5: each of the five classic
//! attacks (man-in-the-middle, reflection, interleaving, replay,
//! timeliness) implemented as a harness that runs against the full TPNR
//! protocol **and** against ablated variants with the matching defence
//! switched off.
//!
//! The headline result (experiment E3): the full protocol blocks all five;
//! removing key authentication admits the MITM, removing sequence numbers
//! admits replay, removing time limits admits stale delivery. Reflection
//! and interleaving are blocked *structurally* (role asymmetry, one-round
//! sessions, transaction binding under the signature), which the
//! deliberately symmetric [`toy`] protocol demonstrates by falling to both.

#![forbid(unsafe_code)]

pub mod harness;
pub mod interleave;
pub mod mitm;
pub mod reflection;
pub mod replay;
pub mod timeliness;
pub mod toy;

pub use harness::{matrix, run, AttackKind, AttackOutcome};
