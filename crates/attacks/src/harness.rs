//! Attack harness types and the E3 attack × ablation matrix.

use tpnr_core::config::Ablation;

/// The five §5 attacks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AttackKind {
    /// §5.1 man-in-the-middle key substitution.
    Mitm,
    /// §5.2 reflection.
    Reflection,
    /// §5.3 interleaving.
    Interleaving,
    /// §5.4 replay.
    Replay,
    /// §5.5 timeliness (indefinite delay).
    Timeliness,
}

impl AttackKind {
    /// All five, paper order.
    pub fn all() -> [AttackKind; 5] {
        [
            AttackKind::Mitm,
            AttackKind::Reflection,
            AttackKind::Interleaving,
            AttackKind::Replay,
            AttackKind::Timeliness,
        ]
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            AttackKind::Mitm => "man-in-the-middle",
            AttackKind::Reflection => "reflection",
            AttackKind::Interleaving => "interleaving",
            AttackKind::Replay => "replay",
            AttackKind::Timeliness => "timeliness",
        }
    }

    /// The ablation that removes this attack's §5 defence (None where the
    /// defence is structural and cannot be toggled — see [`crate::toy`]).
    pub fn matching_ablation(self) -> Ablation {
        match self {
            AttackKind::Mitm => Ablation::NoKeyAuthentication,
            AttackKind::Reflection => Ablation::NoIdentityBinding,
            AttackKind::Interleaving => Ablation::NoIdentityBinding,
            AttackKind::Replay => Ablation::NoSequenceNumbers,
            AttackKind::Timeliness => Ablation::NoTimeLimits,
        }
    }
}

/// Result of one attack run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Attack that ran.
    pub attack: AttackKind,
    /// Protocol variant it ran against.
    pub ablation: Ablation,
    /// Whether the protocol stopped the attack.
    pub blocked: bool,
    /// Human-readable explanation of what happened.
    pub detail: String,
}

/// One row of the E3 matrix.
pub fn run(attack: AttackKind, ablation: Ablation) -> AttackOutcome {
    match attack {
        AttackKind::Mitm => crate::mitm::run(ablation),
        AttackKind::Reflection => crate::reflection::run(ablation),
        AttackKind::Interleaving => crate::interleave::run(ablation),
        AttackKind::Replay => crate::replay::run(ablation),
        AttackKind::Timeliness => crate::timeliness::run(ablation),
    }
}

/// The full E3 matrix: every attack against the full protocol and against
/// its matching ablation.
pub fn matrix() -> Vec<AttackOutcome> {
    let mut out = Vec::new();
    for attack in AttackKind::all() {
        out.push(run(attack, Ablation::None));
        out.push(run(attack, attack.matching_ablation()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_ablations_cover_all() {
        for a in AttackKind::all() {
            assert!(!a.label().is_empty());
            let _ = a.matching_ablation();
        }
    }
}
