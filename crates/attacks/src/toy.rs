//! A deliberately naive symmetric challenge–response protocol.
//!
//! Paper §5.2/§5.3 argue TPNR resists reflection and interleaving *by
//! construction*: it is not a challenge–response system, messages are
//! direction-bound and asymmetric, and every session finishes in one round.
//! To show those structural properties are load-bearing (and not just
//! absent threats), this module implements the kind of protocol the attacks
//! were invented against — a symmetric MAC-based mutual authentication —
//! and the attack harnesses demonstrate reflection and interleaving
//! *succeeding* here while failing against TPNR.
//!
//! The toy protocol (shared key `K`, same in both directions — the flaw):
//!
//! ```text
//! 1. A → B : Na                 (challenge)
//! 2. B → A : MAC_K(Na), Nb      (response + counter-challenge)
//! 3. A → B : MAC_K(Nb)          (response)
//! ```

use tpnr_crypto::hmac::Hmac;
use tpnr_crypto::sha2::Sha256;

/// One party of the toy protocol.
pub struct ToyParty {
    key: Vec<u8>,
    /// Challenge we issued and are waiting to see answered.
    outstanding: Option<u64>,
    /// Whether we ended up convinced the peer knows the key.
    pub convinced: bool,
}

impl ToyParty {
    /// New party with the (shared) key.
    pub fn new(key: &[u8]) -> Self {
        ToyParty { key: key.to_vec(), outstanding: None, convinced: false }
    }

    /// Step 1: issue a challenge.
    pub fn challenge(&mut self, nonce: u64) -> u64 {
        self.outstanding = Some(nonce);
        nonce
    }

    /// Computes the response to a received challenge — note the fatal
    /// symmetry: the same key and formula serve both directions.
    pub fn respond(&self, challenge: u64) -> Vec<u8> {
        Hmac::<Sha256>::mac(&self.key, &challenge.to_be_bytes())
    }

    /// Checks a response to our outstanding challenge.
    pub fn accept_response(&mut self, response: &[u8]) -> bool {
        let Some(ch) = self.outstanding.take() else { return false };
        let ok = Hmac::<Sha256>::verify(&self.key, &ch.to_be_bytes(), response);
        self.convinced = ok;
        ok
    }
}

/// Runs the reflection attack against the toy protocol: the attacker never
/// knows the key, yet convinces Alice by opening a *second* session and
/// reflecting her own challenge back at her. Returns `true` if the attacker
/// is authenticated.
pub fn reflection_attack_succeeds() -> bool {
    let key = b"shared secret between A and B";
    let mut alice_session1 = ToyParty::new(key);
    // Session 1: Alice challenges "Bob" (really the attacker).
    let na = alice_session1.challenge(0x1111);
    // The attacker cannot compute MAC_K(na) … but opens session 2 to Alice
    // and challenges her with her own nonce.
    let reflected_answer = {
        // Alice dutifully answers the "fresh" challenge in session 2.
        let alice_as_responder = ToyParty::new(key);
        alice_as_responder.respond(na)
    };
    // The attacker feeds Alice's own answer back in session 1.
    alice_session1.accept_response(&reflected_answer)
}

/// Runs the interleaving (oracle) attack: the attacker relays challenges
/// between two honest parties, getting each to answer the other's
/// challenge, and ends up authenticated to both without knowing the key.
pub fn interleaving_attack_succeeds() -> bool {
    let key = b"shared secret between A and B";
    let mut alice = ToyParty::new(key);
    let mut bob = ToyParty::new(key);
    // Alice challenges the attacker (thinking it's Bob).
    let na = alice.challenge(0xaaaa);
    // The attacker interleaves: starts a session with Bob and uses Alice's
    // nonce as its "own" challenge.
    let bob_answer = bob.respond(na);
    // …and answers Alice with Bob's response.
    let ok_alice = alice.accept_response(&bob_answer);
    // Symmetrically for Bob.
    let nb = bob.challenge(0xbbbb);
    let alice_answer = alice.respond(nb);
    let ok_bob = bob.accept_response(&alice_answer);
    ok_alice && ok_bob
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_run_works() {
        let key = b"k";
        let mut a = ToyParty::new(key);
        let b = ToyParty::new(key);
        let na = a.challenge(42);
        let resp = b.respond(na);
        assert!(a.accept_response(&resp));
        assert!(a.convinced);
    }

    #[test]
    fn wrong_key_rejected() {
        let mut a = ToyParty::new(b"k1");
        let b = ToyParty::new(b"k2");
        let na = a.challenge(42);
        assert!(!a.accept_response(&b.respond(na)));
    }

    #[test]
    fn response_without_challenge_rejected() {
        let mut a = ToyParty::new(b"k");
        assert!(!a.accept_response(&[0u8; 32]));
    }

    #[test]
    fn the_toy_protocol_is_broken_as_advertised() {
        assert!(reflection_attack_succeeds());
        assert!(interleaving_attack_succeeds());
    }
}
