//! §5.4 replay: re-deliver a captured, perfectly valid message.
//!
//! The attacker records Alice's (signed, sealed) transfer of version 1 of
//! an object, waits for Alice to upload version 2, then replays the v1
//! capture. With sequence-number checking, the stale message is refused;
//! without it, the provider "helpfully" rolls the object back to v1 and
//! even issues a fresh receipt — the attacker rewrote history with traffic
//! it could not read or modify.

use crate::harness::{AttackKind, AttackOutcome};
use std::sync::{Arc, Mutex};
use tpnr_core::client::TimeoutStrategy;
use tpnr_core::config::{Ablation, ProtocolConfig};
use tpnr_core::message::Message;
use tpnr_core::runner::World;
use tpnr_net::codec::Wire;
use tpnr_net::sim::Action;
use tpnr_net::Bytes;

/// Runs the replay attack against the given protocol variant.
pub fn run(ablation: Ablation) -> AttackOutcome {
    let cfg = ProtocolConfig::ablated(ablation);
    let mut w = World::new(41, cfg);

    // A passive wiretap records alice→bob traffic.
    let tape: Arc<Mutex<Vec<Bytes>>> = Arc::new(Mutex::new(Vec::new()));
    let tap = tape.clone();
    let alice_node = w.alice_node;
    let bob_node = w.bob_node;
    w.net_mut().set_interceptor(Box::new(
        move |src: tpnr_net::NodeId, dst: tpnr_net::NodeId, payload: &[u8], _t| {
            if src == alice_node && dst == bob_node {
                // The wiretap's own recording copy; replaying the capture
                // later decodes it as a shared zero-copy frame.
                tap.lock().unwrap().push(Bytes::from(payload.to_vec()));
            }
            Action::Deliver
        },
    ));

    // Alice uploads v1, then v2 of the same object.
    let r1 = w.upload(b"doc", b"version 1".to_vec(), TimeoutStrategy::AbortFirst);
    let _r2 = w.upload(b"doc", b"version 2".to_vec(), TimeoutStrategy::AbortFirst);
    assert_eq!(w.provider.peek_storage(b"doc"), Some(&b"version 2"[..]));

    // The attacker replays the captured v1 transfer verbatim.
    let captured = tape.lock().unwrap()[0].clone();
    let replayed = Message::from_wire_bytes(&captured).expect("captured frame decodes");
    assert_eq!(replayed.txn_id(), r1.txn_id);
    let alice_id = w.client.id();
    let now = w.net().now();
    let result = w.provider.handle(alice_id, &replayed, now);

    let rolled_back = w.provider.peek_storage(b"doc") == Some(&b"version 1"[..]);
    let succeeded = result.is_ok() && rolled_back;

    AttackOutcome {
        attack: AttackKind::Replay,
        ablation,
        blocked: !succeeded,
        detail: if succeeded {
            "replayed v1 transfer was accepted: storage rolled back from v2 to v1 and a \
             fresh receipt was issued for stale data"
                .to_string()
        } else {
            format!(
                "replay refused ({}); storage still holds v2",
                result.err().map(|e| e.to_string()).unwrap_or_else(|| "no rollback".into())
            )
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_protocol_blocks_replay() {
        let o = run(Ablation::None);
        assert!(o.blocked, "{}", o.detail);
        assert!(o.detail.contains("stale sequence"), "{}", o.detail);
    }

    #[test]
    fn ablated_sequence_numbers_admit_replay() {
        let o = run(Ablation::NoSequenceNumbers);
        assert!(!o.blocked, "{}", o.detail);
    }

    #[test]
    fn unrelated_ablation_does_not_admit_replay() {
        let o = run(Ablation::NoKeyAuthentication);
        assert!(o.blocked);
    }
}
