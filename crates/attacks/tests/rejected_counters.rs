//! Adversarial runs must be visible in the observability layer: every
//! injected replay the provider refuses shows up as a Rejected event with
//! the right `ValidationError` variant, and the counters tie out against
//! the simulator's own adversary statistics.

use tpnr_core::client::TimeoutStrategy;
use tpnr_core::config::ProtocolConfig;
use tpnr_core::obs::EventKind;
use tpnr_core::runner::World;
use tpnr_net::sim::Action;

#[test]
fn injected_replays_show_up_in_rejected_counters() {
    let mut w = World::new(77, ProtocolConfig::full());
    let (alice, bob) = (w.alice_node, w.bob_node);
    // The adversary replays every alice→bob frame verbatim. Injections are
    // untagged on the wire, so attribution must come from the decoded
    // protocol header.
    w.net_mut().set_interceptor(Box::new(move |src, dst, payload: &[u8], _t| {
        if src == alice && dst == bob {
            Action::InjectAfter(vec![(src, dst, payload.to_vec())])
        } else {
            Action::Deliver
        }
    }));

    let r1 = w.upload(b"doc", b"version 1".to_vec(), TimeoutStrategy::AbortFirst);
    let r2 = w.upload(b"doc", b"version 2".to_vec(), TimeoutStrategy::AbortFirst);
    assert_eq!(w.provider.peek_storage(b"doc"), Some(&b"version 2"[..]));

    // One Transfer per upload was replayed; both replays were refused as
    // stale and both refusals are on the record.
    assert_eq!(w.net().stats.injected, 2);
    let m = &w.obs.metrics;
    assert_eq!(m.rejected, 2);
    assert_eq!(m.rejected_by.get("stale-sequence"), Some(&2));
    assert_eq!(m.rejected_by.values().sum::<u64>(), 2);
    assert_eq!(m.garbled, 0, "replays decode fine; they are rejected, not garbled");

    // The provider's own ledger agrees: one genuine Transfer accepted and
    // one replay refused per upload.
    assert_eq!(w.provider.actor_stats.accepted, 2);
    assert_eq!(w.provider.actor_stats.rejected, 2);

    // Each Rejected event is attributed to the session it replays into,
    // via the decoded header (the wire tag is absent on injections).
    let rejected: Vec<_> =
        w.obs.events().iter().filter(|e| matches!(e.kind, EventKind::Rejected { .. })).collect();
    assert_eq!(rejected.len(), 2);
    let mut txns: Vec<_> = rejected.iter().map(|e| e.txn).collect();
    txns.sort_unstable();
    let mut expected = vec![Some(r1.txn_id), Some(r2.txn_id)];
    expected.sort_unstable();
    assert_eq!(txns, expected);
    assert!(rejected.iter().all(|e| e.actor == "bob" && e.msg_kind() == Some("Transfer")));
}
