#!/usr/bin/env bash
# Repo CI gate. Run from the repo root before pushing:
#
#   ./ci.sh            # full gate: format, lints, build, every test
#   ./ci.sh --quick    # skip the release build (iteration loop)
#
# Everything here runs offline against the vendored workspace (the
# proptest/criterion shims in crates/ — no network, no external deps).
set -euo pipefail
cd "$(dirname "$0")"

quick=0
[ "${1:-}" = "--quick" ] && quick=1

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Protocol-invariant lint (crates/lint): the per-file textual rules plus
# the call-graph semantic passes — PANIC-REACH (no panic reachable from a
# protocol entry point), SECRET-FLOW (key material never reaches a
# formatting/observability sink), ALLOC-HOT (allocation discipline on the
# fixed-limb kernel path and the evidence hot loop; subsumes the old
# limbs.rs allocation grep and the E4 deep-copy grep). The binary exits
# nonzero on any finding not justified in lint-allow.toml AND on stale
# allowlist entries, so no wrapper grep is needed. Full mode also writes
# the SARIF artifact code-scanning UIs ingest.
echo "==> tpnr-lint (rules + semantic passes)"
if [ "$quick" -eq 0 ]; then
    mkdir -p target/artifacts
    cargo run -q -p tpnr-lint -- --sarif target/artifacts/lint.sarif
    echo "    sarif: target/artifacts/lint.sarif"
else
    cargo run -q -p tpnr-lint
fi

if [ "$quick" -eq 0 ]; then
    echo "==> cargo build --release"
    cargo build --release
fi

echo "==> cargo test --workspace"
cargo test --workspace -q

# Bench targets have `test = false` (the criterion shim runs no harness),
# so the test sweep above never compiles them — check they still build.
echo "==> cargo check --benches --workspace"
cargo check --benches --workspace

# The E4 perf exhibit must stay machine-readable and copy-free: emit the
# quick sweep (≤ 1 MiB payloads) and re-validate it with the JSONL checker.
echo "==> experiments --bench-e4 --quick"
bench_e4="$(mktemp)"
cargo run -q -p tpnr-bench --bin experiments -- --bench-e4 "$bench_e4" --quick
cargo run -q -p tpnr-bench --bin experiments -- --validate-jsonl "$bench_e4"
rm -f "$bench_e4"

# Chaos smoke: the E8 sweep must stay machine-readable, and no crashed run
# may lose sealed evidence — "limbo"/"evidence_loss" must be 0 in every row.
echo "==> experiments --bench-e8 --quick"
bench_e8="$(mktemp)"
cargo run -q -p tpnr-bench --bin experiments -- --bench-e8 "$bench_e8" --quick
cargo run -q -p tpnr-bench --bin experiments -- --validate-jsonl "$bench_e8"
if grep -Eq '"(limbo|evidence_loss)":[1-9]' "$bench_e8"; then
    echo "error: chaos sweep reported evidence-less limbo" >&2
    exit 1
fi
rm -f "$bench_e8"

# Scale smoke: the E10 sweep must stay machine-readable, the delivery
# conservation law (delivered + dropped == sent + duplicated) must hold in
# every lane, and eviction to the archive may never lose evidence —
# "conservation_violations"/"evidence_loss" must be 0 in every row, and
# "evicted" must be non-zero (the bounded-memory path actually engaged).
echo "==> experiments --bench-e10 --quick"
bench_e10="$(mktemp)"
cargo run -q -p tpnr-bench --bin experiments -- --bench-e10 "$bench_e10" --quick
cargo run -q -p tpnr-bench --bin experiments -- --validate-jsonl "$bench_e10"
if grep -Eq '"(conservation_violations|evidence_loss)":[1-9]' "$bench_e10"; then
    echo "error: scale sweep broke conservation or lost evidence" >&2
    exit 1
fi
if grep -q '"evicted":0,' "$bench_e10"; then
    echo "error: scale sweep never evicted — bounded-memory path untested" >&2
    exit 1
fi
rm -f "$bench_e10"

# RSA-kernel smoke: the E12 sweep must stay machine-readable, batch
# verification must not be slower than serial at n=64, signing must stay
# under the recorded per-width floors (both booleans are computed by the
# measurement code itself), and a tampered batch member must be attributed.
echo "==> experiments --bench-e12 --quick"
bench_e12="$(mktemp)"
cargo run -q -p tpnr-bench --bin experiments -- --bench-e12 "$bench_e12" --quick
cargo run -q -p tpnr-bench --bin experiments -- --validate-jsonl "$bench_e12"
if grep -Eq '"(batch_not_slower|sign_floor_ok|tampered_attributed)":false' "$bench_e12"; then
    echo "error: E12 kernel sweep failed a perf/soundness gate" >&2
    grep -E '"(batch_not_slower|sign_floor_ok|tampered_attributed)":false' "$bench_e12" >&2
    exit 1
fi
rm -f "$bench_e12"

# Work-stealing smoke: the E13 worker sweep must stay machine-readable,
# every worker count must reproduce the serial run byte-for-byte in the
# non-timing fields ("deterministic_vs_serial"), meet its honest
# core-scaled speedup floor ("scaling_ok" — both booleans are computed by
# the measurement code itself), and the usual E10 conservation/evidence
# laws must hold in every row.
echo "==> experiments --bench-e13 --quick"
bench_e13="$(mktemp)"
cargo run -q -p tpnr-bench --bin experiments -- --bench-e13 "$bench_e13" --quick
cargo run -q -p tpnr-bench --bin experiments -- --validate-jsonl "$bench_e13"
if grep -Eq '"(scaling_ok|deterministic_vs_serial)":false' "$bench_e13"; then
    echo "error: E13 worker sweep failed a scaling/determinism gate" >&2
    grep -E '"(scaling_ok|deterministic_vs_serial)":false' "$bench_e13" >&2
    exit 1
fi
if grep -Eq '"(conservation_violations|evidence_loss)":[1-9]' "$bench_e13"; then
    echo "error: E13 worker sweep broke conservation or lost evidence" >&2
    exit 1
fi
rm -f "$bench_e13"

# Transport smoke: the E14 backend comparison must stay machine-readable,
# and the same protocol code must hold the delivery conservation law, lose
# no evidence, and reject all five §5 attacks on every backend that ran
# ("attacks_ok" is computed by the measurement code; the tcp row may be
# "skipped" on hosts that refuse the loopback bind, but the simulator and
# the in-process channel wire must always run).
echo "==> experiments --bench-e14 --quick"
bench_e14="$(mktemp)"
cargo run -q -p tpnr-bench --bin experiments -- --bench-e14 "$bench_e14" --quick
cargo run -q -p tpnr-bench --bin experiments -- --validate-jsonl "$bench_e14"
if grep -Eq '"(conservation_violations|evidence_loss)":[1-9]' "$bench_e14"; then
    echo "error: E14 transport comparison broke conservation or lost evidence" >&2
    exit 1
fi
if grep -q '"attacks_ok":false' "$bench_e14"; then
    echo "error: E14 transport comparison let a §5 attack through" >&2
    grep '"attacks_ok":false' "$bench_e14" >&2
    exit 1
fi
if grep -Eq '"backend":"(simnet|channel)"[^\n]*"skipped":true' "$bench_e14"; then
    echo "error: an in-process E14 backend was skipped" >&2
    exit 1
fi
rm -f "$bench_e14"

if [ "$quick" -eq 0 ]; then
    # The observability export must stay machine-readable: produce a trace
    # and re-validate it with the binary's own JSONL checker.
    echo "==> experiments --trace-jsonl / --validate-jsonl"
    trace="$(mktemp)"
    trap 'rm -f "$trace"' EXIT
    cargo run --release -q -p tpnr-bench --bin experiments -- --trace-jsonl "$trace"
    cargo run --release -q -p tpnr-bench --bin experiments -- --validate-jsonl "$trace"
fi

echo "CI green."
