pub use tpnr_core as core;
