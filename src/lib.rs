//! Umbrella re-exports for the TPNR workspace.

#![forbid(unsafe_code)]

pub use tpnr_core as core;
pub use tpnr_core::prelude;
